//! The parallel experiment engine.
//!
//! Every figure in the paper is a grid of independent simulations
//! (application × prefetcher × configuration), and each cell is a pure
//! function of its inputs — so the grid fans out across OS threads with
//! no change in results. This module provides:
//!
//! * [`Job`] — one simulation cell: a trace source, a prefetcher factory,
//!   a [`SystemConfig`] and a warmup fraction.
//! * [`Runner`] — executes a batch of jobs on `std::thread::scope`
//!   workers (no external thread-pool dependency), building each distinct
//!   `(app, length)` trace exactly once and sharing it via `Arc<Trace>`.
//! * [`RunReport`] — per-cell wall-clock timings plus batch-level
//!   observability: slowest cell, total simulated cycles, simulation
//!   throughput.
//!
//! Determinism: workers claim jobs from an atomic counter, so the
//! *schedule* varies run to run, but each cell simulates in isolation on
//! an identical trace and results land in a slot indexed by job order —
//! the output is bit-identical to a serial run regardless of thread
//! count (`tests/parallel_engine.rs` asserts this).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use planaria_hash::FastHashMap;

use planaria_core::Prefetcher;
use planaria_telemetry::TelemetryReport;
use planaria_trace::apps::{self, AppId};
use planaria_trace::stream::AccessStream;
use planaria_trace::{Trace, WorkloadSpec};

use crate::traffic::{ClosedLoopReport, TrafficConfig, TrafficModel};
use crate::{MemorySystem, PrefetcherKind, SimResult, SystemConfig};

/// Builds a fresh, single-use [`AccessStream`] for one cell. Streams are
/// consumed by the run, so every cell gets its own instance from the
/// factory (e.g. one `ChunkedTraceReader` per cell over the same packed
/// file).
pub type StreamFactory = Arc<dyn Fn() -> Box<dyn AccessStream + Send> + Send + Sync>;

/// Where a job's input trace comes from.
#[derive(Clone)]
pub enum TraceSource {
    /// Synthesise the Table 2 app at `length` accesses. Traces are cached
    /// per `(app, length)` across the batch and built exactly once —
    /// unless the job is [`Job::streamed`], in which case the workload
    /// renders chunk-at-a-time and nothing is materialized.
    App {
        /// The application to synthesise.
        app: AppId,
        /// Trace length in accesses.
        length: usize,
    },
    /// A caller-prepared trace, shared by reference.
    Shared(Arc<Trace>),
    /// A factory of access streams; the cell runs through the streamed
    /// engine path in flat memory (implies [`Job::streamed`]).
    Stream(StreamFactory),
}

/// Builds a fresh prefetcher instance inside a worker thread.
pub type PrefetcherFactory = Box<dyn Fn() -> Box<dyn Prefetcher> + Send + Sync>;

/// One simulation cell of an experiment grid.
pub struct Job {
    /// Display label (progress lines, [`Cell::label`], slowest-cell report).
    pub label: String,
    /// The input trace.
    pub source: TraceSource,
    /// Full-system configuration.
    pub config: SystemConfig,
    /// Warmup fraction forwarded to [`MemorySystem::run_with_warmup`].
    pub warmup: f64,
    /// `Some` switches the cell to closed-loop injection via
    /// [`TrafficModel`]; `None` (the default) replays open-loop.
    pub traffic: Option<TrafficConfig>,
    /// Run through the streamed engine path ([`Job::streamed`]).
    pub stream: bool,
    factory: PrefetcherFactory,
}

impl Job {
    /// A job running `kind` over `app`'s trace with Table 1 defaults.
    pub fn grid_cell(app: AppId, kind: PrefetcherKind, length: usize) -> Self {
        Self::new(
            format!("{}/{}", apps::profile(app).abbr, kind.label()),
            TraceSource::App { app, length },
            kind,
        )
    }

    /// A job with an explicit label and trace source.
    pub fn new(label: impl Into<String>, source: TraceSource, kind: PrefetcherKind) -> Self {
        Self::with_factory(label, source, Box::new(move || kind.build()))
    }

    /// A job with a custom prefetcher factory (ablations with non-default
    /// prefetcher configurations).
    pub fn with_factory(
        label: impl Into<String>,
        source: TraceSource,
        factory: PrefetcherFactory,
    ) -> Self {
        Self {
            label: label.into(),
            source,
            config: SystemConfig::default(),
            warmup: 0.0,
            traffic: None,
            stream: false,
            factory,
        }
    }

    /// Switches the cell to the streamed engine path: an
    /// [`TraceSource::App`] source renders its workload chunk-at-a-time
    /// instead of materializing a trace, a [`TraceSource::Shared`] trace
    /// replays through its stream adapter. Results are bit-identical to
    /// the materialized path (`tests/streaming.rs` pins this); only the
    /// memory profile changes.
    pub fn streamed(mut self) -> Self {
        self.stream = true;
        self
    }

    /// Replaces the system configuration.
    pub fn config(mut self, cfg: SystemConfig) -> Self {
        self.config = cfg;
        self
    }

    /// Sets the warmup fraction.
    ///
    /// # Panics
    ///
    /// Panics if `warmup` is not within `0.0..1.0`.
    pub fn warmup(mut self, warmup: f64) -> Self {
        assert!((0.0..1.0).contains(&warmup), "warmup fraction must be in [0, 1)");
        assert!(self.traffic.is_none() || warmup == 0.0, "closed-loop jobs measure end to end");
        self.warmup = warmup;
        self
    }

    /// Switches the cell to closed-loop injection with `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if a non-zero warmup fraction was already set — closed-loop
    /// cells measure the run end to end.
    pub fn traffic(mut self, cfg: TrafficConfig) -> Self {
        assert!(self.warmup == 0.0, "closed-loop jobs measure end to end");
        self.traffic = Some(cfg);
        self
    }
}

/// A progress sample from a running cell.
#[derive(Debug, Clone, Copy)]
pub struct ProgressEvent<'a> {
    /// Index of the job within the batch.
    pub job: usize,
    /// Number of jobs in the batch.
    pub total: usize,
    /// The job's label.
    pub label: &'a str,
    /// Accesses simulated so far in this cell.
    pub done: usize,
    /// Total accesses in this cell's trace (`usize::MAX` when a streamed
    /// source does not know its length up front).
    pub trace_len: usize,
    /// Cumulative SC demand hit rate so far
    /// ([`MemorySystem::interim_hit_rate`]).
    pub hit_rate: f64,
}

type ProgressFn = Arc<dyn Fn(ProgressEvent<'_>) + Send + Sync>;

/// Resolves each distinct `(app, length)` workload once for the batch.
///
/// Every entry holds the workload *spec* — the stream factory — plus a
/// lazily-materialized shared trace. Streamed jobs only touch the spec,
/// so an all-streamed batch never materializes anything; materialized
/// jobs build the trace exactly once, under the entry's own `OnceLock`
/// (the outer mutex only guards slot lookup, so two workers needing
/// *different* traces build concurrently while two needing the *same*
/// trace share one build).
struct TraceCache {
    slots: Mutex<FastHashMap<(AppId, usize), Arc<CacheEntry>>>,
    builds: AtomicUsize,
}

/// One cached workload: the deterministic spec plus its lazily-built
/// materialization.
struct CacheEntry {
    spec: WorkloadSpec,
    materialized: OnceLock<Arc<Trace>>,
}

impl TraceCache {
    fn new() -> Self {
        Self { slots: Mutex::new(FastHashMap::default()), builds: AtomicUsize::new(0) }
    }

    fn entry(&self, app: AppId, length: usize) -> Arc<CacheEntry> {
        self.slots
            .lock()
            .expect("trace-cache lock")
            .entry((app, length))
            .or_insert_with(|| {
                Arc::new(CacheEntry {
                    spec: apps::profile(app).scaled(length),
                    materialized: OnceLock::new(),
                })
            })
            .clone()
    }

    fn get(&self, app: AppId, length: usize) -> Arc<Trace> {
        let entry = self.entry(app, length);
        entry
            .materialized
            .get_or_init(|| {
                self.builds.fetch_add(1, Ordering::Relaxed);
                Arc::new(entry.spec.build())
            })
            .clone()
    }

    /// A fresh rendering stream for the workload; never materializes.
    fn stream(&self, app: AppId, length: usize) -> impl AccessStream + Send + use<> {
        self.entry(app, length).spec.stream()
    }
}

/// One finished cell of a [`RunReport`].
#[derive(Debug, Clone)]
pub struct Cell {
    /// The job's label.
    pub label: String,
    /// Wall-clock time this cell took (build-shared-trace time excluded
    /// for cache hits, included for the one builder).
    pub wall: Duration,
    /// The simulation result.
    pub result: SimResult,
    /// The cell's decision/lifecycle telemetry (counters always populated;
    /// events only when the job's config enabled event capture).
    pub telemetry: TelemetryReport,
    /// Per-device slowdown/fairness outcomes, populated only for
    /// closed-loop jobs ([`Job::traffic`]).
    pub closed_loop: Option<ClosedLoopReport>,
}

/// Results plus batch observability, cells in job-submission order.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Finished cells, in the order jobs were submitted (independent of
    /// worker scheduling).
    pub cells: Vec<Cell>,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Distinct `(app, length)` traces synthesised.
    pub trace_builds: usize,
}

impl RunReport {
    /// The cell that took the longest wall-clock time.
    pub fn slowest(&self) -> Option<&Cell> {
        self.cells.iter().max_by_key(|c| c.wall)
    }

    /// Total simulated memory-system cycles across all cells.
    pub fn total_sim_cycles(&self) -> u64 {
        self.cells.iter().map(|c| c.result.duration_cycles).sum()
    }

    /// Simulation throughput: simulated cycles per wall-clock second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_sim_cycles() as f64 / secs
        } else {
            0.0
        }
    }

    /// A one-paragraph summary for harness stderr output.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} cells on {} thread{} in {:.2?} ({:.1}M sim-cycles/s, {} trace build{})",
            self.cells.len(),
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.wall,
            self.sim_cycles_per_sec() / 1e6,
            self.trace_builds,
            if self.trace_builds == 1 { "" } else { "s" },
        );
        if let Some(slow) = self.slowest() {
            s.push_str(&format!("; slowest cell {} at {:.2?}", slow.label, slow.wall));
        }
        s
    }

    /// Consumes the report into bare results, job order preserved.
    pub fn into_results(self) -> Vec<SimResult> {
        self.cells.into_iter().map(|c| c.result).collect()
    }

    /// The batch's merged telemetry: per-cell counters absorbed in
    /// submission order (so the merge is identical at any thread count).
    /// Per-cell event streams stay on the cells; only counters aggregate.
    ///
    /// # Examples
    ///
    /// ```
    /// use planaria_sim::experiment::PrefetcherKind;
    /// use planaria_sim::runner::{Job, Runner};
    /// use planaria_trace::apps::AppId;
    ///
    /// let report = Runner::new(2).run(vec![
    ///     Job::grid_cell(AppId::Cfm, PrefetcherKind::Planaria, 3_000),
    ///     Job::grid_cell(AppId::Cfm, PrefetcherKind::NextLine, 3_000),
    /// ]);
    /// let merged = report.telemetry();
    /// let per_cell: u64 = report.cells.iter().map(|c| c.telemetry.total_issued()).sum();
    /// assert_eq!(merged.total_issued(), per_cell);
    /// ```
    pub fn telemetry(&self) -> TelemetryReport {
        let mut merged = TelemetryReport::new();
        for cell in &self.cells {
            merged.absorb(&cell.telemetry);
        }
        merged
    }

    /// Consumes the report into rows of `width` results — the
    /// per-app grouping every figure harness consumes.
    ///
    /// # Panics
    ///
    /// Panics if the cell count is not a multiple of `width`.
    pub fn into_rows(self, width: usize) -> Vec<Vec<SimResult>> {
        assert!(width > 0 && self.cells.len().is_multiple_of(width), "cells must tile into rows");
        let mut rows = Vec::with_capacity(self.cells.len() / width);
        let mut iter = self.cells.into_iter().map(|c| c.result);
        while let Some(first) = iter.next() {
            let mut row = Vec::with_capacity(width);
            row.push(first);
            for _ in 1..width {
                row.push(iter.next().expect("length checked"));
            }
            rows.push(row);
        }
        rows
    }
}

/// Executes batches of [`Job`]s across worker threads.
pub struct Runner {
    threads: usize,
    progress: Option<ProgressFn>,
    progress_every: usize,
}

impl Runner {
    /// A runner with an explicit worker count (`0` is clamped to 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1), progress: None, progress_every: 50_000 }
    }

    /// A single-threaded runner (what the serial `experiment::*`
    /// wrappers use).
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A runner sized to the machine's available parallelism.
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(n)
    }

    /// The worker count this runner will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Installs a progress callback, invoked from worker threads every
    /// [`Runner::progress_every`] simulated accesses of each cell.
    pub fn with_progress(mut self, f: impl Fn(ProgressEvent<'_>) + Send + Sync + 'static) -> Self {
        self.progress = Some(Arc::new(f));
        self
    }

    /// Sets the progress sampling interval in accesses.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn progress_every(mut self, every: usize) -> Self {
        assert!(every > 0, "progress interval must be positive");
        self.progress_every = every;
        self
    }

    /// Runs the full evaluation grid (every Table 2 app × `kinds`), cells
    /// in app-major order; [`RunReport::into_rows`]`(kinds.len())` yields
    /// the per-app grouping of [`crate::experiment::run_grid`].
    pub fn run_grid(&self, kinds: &[PrefetcherKind], length: usize) -> RunReport {
        let jobs: Vec<Job> = AppId::ALL
            .iter()
            .flat_map(|&app| kinds.iter().map(move |&k| Job::grid_cell(app, k, length)))
            .collect();
        self.run(jobs)
    }

    /// Runs a batch of jobs; the report's cells are in submission order
    /// regardless of which worker finished which cell when.
    pub fn run(&self, jobs: Vec<Job>) -> RunReport {
        let started = Instant::now();
        let total = jobs.len();
        let cache = TraceCache::new();
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<Cell>> = (0..total).map(|_| OnceLock::new()).collect();
        let workers = self.threads.min(total.max(1));

        let work = |_worker: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= total {
                break;
            }
            let job = &jobs[i];
            let t0 = Instant::now();
            // Resolve the input: a shared materialized trace, or an owned
            // single-use stream for streamed cells. Either way the engine
            // runs the same streamed core, so the split only affects the
            // memory profile.
            enum Input<'s> {
                Trace(Arc<Trace>),
                Stream(Box<dyn AccessStream + 's>),
            }
            let input = match &job.source {
                TraceSource::App { app, length } if job.stream => {
                    Input::Stream(Box::new(cache.stream(*app, *length)))
                }
                TraceSource::App { app, length } => Input::Trace(cache.get(*app, *length)),
                TraceSource::Shared(t) if job.stream => Input::Stream(Box::new(t.stream())),
                TraceSource::Shared(t) => Input::Trace(Arc::clone(t)),
                TraceSource::Stream(f) => Input::Stream(f()),
            };
            let sys = MemorySystem::new(job.config, (job.factory)());
            let (result, telemetry, closed_loop) = match (job.traffic, input) {
                // Closed-loop cells derive their own injection schedule;
                // warmup is rejected at Job construction and progress
                // sampling does not apply.
                (Some(traffic), Input::Trace(trace)) => {
                    let (result, closed, telemetry) =
                        TrafficModel::new(traffic).run_telemetry(sys, &trace);
                    (result, telemetry, Some(closed))
                }
                (Some(traffic), Input::Stream(mut stream)) => {
                    let (result, closed, telemetry) =
                        TrafficModel::new(traffic).run_stream_telemetry(sys, stream.as_mut());
                    (result, telemetry, Some(closed))
                }
                (None, Input::Trace(trace)) => {
                    let (result, _, telemetry) = match &self.progress {
                        Some(cb) => sys.run_core(
                            &trace,
                            job.warmup,
                            self.progress_every,
                            Some(&mut |done, hit_rate| {
                                cb(ProgressEvent {
                                    job: i,
                                    total,
                                    label: &job.label,
                                    done,
                                    trace_len: trace.len(),
                                    hit_rate,
                                })
                            }),
                        ),
                        None => sys.run_core(&trace, job.warmup, usize::MAX, None),
                    };
                    (result, telemetry, None)
                }
                (None, Input::Stream(mut stream)) => {
                    let (result, _, telemetry) = match &self.progress {
                        Some(cb) => {
                            let trace_len =
                                stream.total_len().map(|l| l as usize).unwrap_or(usize::MAX);
                            sys.run_stream_core(
                                stream.as_mut(),
                                job.warmup,
                                self.progress_every,
                                Some(&mut |done, hit_rate| {
                                    cb(ProgressEvent {
                                        job: i,
                                        total,
                                        label: &job.label,
                                        done,
                                        trace_len,
                                        hit_rate,
                                    })
                                }),
                            )
                        }
                        None => sys.run_stream_core(stream.as_mut(), job.warmup, usize::MAX, None),
                    };
                    (result, telemetry, None)
                }
            };
            let cell = Cell {
                label: job.label.clone(),
                wall: t0.elapsed(),
                result,
                telemetry,
                closed_loop,
            };
            slots[i].set(cell).expect("each job index claimed once");
        };

        if workers <= 1 {
            work(0);
        } else {
            std::thread::scope(|scope| {
                let work = &work;
                for w in 0..workers {
                    scope.spawn(move || work(w));
                }
            });
        }

        RunReport {
            cells: slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("all jobs completed"))
                .collect(),
            wall: started.elapsed(),
            threads: workers,
            trace_builds: cache.builds.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rows_and_helpers() {
        let runner = Runner::serial();
        let kinds = [PrefetcherKind::None, PrefetcherKind::NextLine];
        let report = runner.run(vec![
            Job::grid_cell(AppId::Cfm, kinds[0], 2_000),
            Job::grid_cell(AppId::Cfm, kinds[1], 2_000),
        ]);
        assert_eq!(report.threads, 1);
        assert_eq!(report.trace_builds, 1, "one app, one trace");
        assert!(report.slowest().is_some());
        assert!(report.total_sim_cycles() > 0);
        assert!(report.summary().contains("2 cells"));
        let rows = report.into_rows(2);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].prefetcher, "None");
    }

    #[test]
    fn shared_source_skips_cache() {
        let trace = Arc::new(apps::profile(AppId::Hi3).scaled(1_000).build());
        let report = Runner::new(2).run(vec![
            Job::new("a", TraceSource::Shared(Arc::clone(&trace)), PrefetcherKind::None),
            Job::new("b", TraceSource::Shared(trace), PrefetcherKind::NextLine),
        ]);
        assert_eq!(report.trace_builds, 0);
        assert_eq!(report.cells[0].label, "a");
        assert_eq!(report.cells[1].label, "b");
    }

    #[test]
    fn progress_callback_fires_in_order_per_cell() {
        let samples = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&samples);
        let runner = Runner::serial().progress_every(500).with_progress(move |e| {
            sink.lock().unwrap().push((e.job, e.done, e.hit_rate));
        });
        let report = runner.run(vec![Job::grid_cell(AppId::Qsm, PrefetcherKind::None, 2_000)]);
        assert_eq!(report.cells.len(), 1);
        let samples = samples.lock().unwrap();
        assert_eq!(samples.len(), 4, "2000 accesses / every 500");
        assert!(samples.windows(2).all(|w| w[0].1 < w[1].1), "monotone progress");
        assert!(samples.iter().all(|s| (0.0..=1.0).contains(&s.2)));
    }

    #[test]
    fn observed_run_matches_unobserved() {
        let trace = Arc::new(apps::profile(AppId::Fort).scaled(3_000).build());
        let quiet = Runner::serial().run(vec![Job::new(
            "q",
            TraceSource::Shared(Arc::clone(&trace)),
            PrefetcherKind::Planaria,
        )]);
        let observed = Runner::serial()
            .progress_every(100)
            .with_progress(|_| {})
            .run(vec![Job::new("o", TraceSource::Shared(trace), PrefetcherKind::Planaria)]);
        assert_eq!(quiet.cells[0].result, observed.cells[0].result);
    }

    #[test]
    #[should_panic(expected = "warmup fraction")]
    fn job_rejects_bad_warmup() {
        let _ = Job::grid_cell(AppId::Cfm, PrefetcherKind::None, 100).warmup(1.0);
    }

    #[test]
    fn streamed_app_jobs_match_materialized_and_skip_builds() {
        let job = || Job::grid_cell(AppId::IdV, PrefetcherKind::Planaria, 2_000);
        let mat = Runner::serial().run(vec![job()]);
        let streamed = Runner::serial().run(vec![job().streamed()]);
        assert_eq!(mat.cells[0].result, streamed.cells[0].result);
        assert_eq!(mat.trace_builds, 1);
        assert_eq!(streamed.trace_builds, 0, "streamed cells must not materialize");
    }

    #[test]
    fn stream_factory_source_runs_each_cell_on_a_fresh_stream() {
        let spec = apps::profile(AppId::Ko).scaled(1_500);
        let factory: StreamFactory = {
            let spec = spec.clone();
            Arc::new(move || Box::new(spec.stream()))
        };
        let report = Runner::new(2).run(vec![
            Job::new("a", TraceSource::Stream(Arc::clone(&factory)), PrefetcherKind::None),
            Job::new("b", TraceSource::Stream(factory), PrefetcherKind::None),
        ]);
        assert_eq!(report.trace_builds, 0);
        assert_eq!(
            report.cells[0].result, report.cells[1].result,
            "identical factories must give identical cells"
        );
    }
}
