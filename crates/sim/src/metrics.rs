//! Result records produced by a simulation run.

use core::fmt;

/// DRAM traffic split by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrafficBreakdown {
    /// Reads issued for demand misses.
    pub demand_reads: u64,
    /// Reads issued for prefetches.
    pub prefetch_reads: u64,
    /// Dirty-line writebacks.
    pub writebacks: u64,
}

impl TrafficBreakdown {
    /// Total DRAM requests.
    pub fn total(&self) -> u64 {
        self.demand_reads + self.prefetch_reads + self.writebacks
    }

    /// Relative traffic versus a baseline run (1.0 = equal).
    pub fn relative_to(&self, baseline: &TrafficBreakdown) -> f64 {
        if baseline.total() == 0 {
            return 1.0;
        }
        self.total() as f64 / baseline.total() as f64
    }
}

/// Per-device demand statistics (the SC is shared by CPUs, the GPU and the
/// accelerators; their hit rates and latencies differ).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceStat {
    /// Device label (`planaria_common::DeviceId::label`: "cpu0".."cpu7",
    /// "gpu", "npu", "isp", "dsp").
    pub device: String,
    /// Demand accesses from this device.
    pub accesses: u64,
    /// Demand hits from this device.
    pub hits: u64,
    /// Average memory access time of this device's demands, in cycles.
    pub amat_cycles: f64,
}

impl DeviceStat {
    /// Hit rate of this device (0 when it issued no accesses).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// The full metric record of one (workload × prefetcher) simulation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimResult {
    /// Workload label (Table 2 abbreviation).
    pub workload: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// Demand accesses simulated.
    pub accesses: u64,
    /// SC demand hit rate (Figure 7's metric).
    pub hit_rate: f64,
    /// Average memory access time in cycles (Figure 8's metric).
    pub amat_cycles: f64,
    /// DRAM traffic split (the §1 traffic-overhead numbers).
    pub traffic: TrafficBreakdown,
    /// Prefetched lines that served a demand hit.
    pub useful_prefetches: u64,
    /// Useful prefetches attributed to SLP (Figure 9).
    pub useful_slp: u64,
    /// Useful prefetches attributed to TLP (Figure 9).
    pub useful_tlp: u64,
    /// Demand misses that merged into an in-flight prefetch.
    pub late_prefetches: u64,
    /// Prefetched lines evicted unused.
    pub polluting_prefetches: u64,
    /// useful / prefetch fills.
    pub prefetch_accuracy: f64,
    /// useful / (useful + misses).
    pub prefetch_coverage: f64,
    /// Requests dropped by the cache/in-flight/queue dedup filter.
    pub prefetches_filtered: u64,
    /// Writebacks dropped under extreme queue pressure.
    pub writebacks_dropped: u64,
    /// First-demand-to-last-completion span in cycles.
    pub duration_cycles: u64,
    /// DRAM energy (pJ).
    pub dram_energy_pj: f64,
    /// SC array energy (pJ).
    pub sc_energy_pj: f64,
    /// Prefetcher metadata energy (pJ).
    pub prefetcher_energy_pj: f64,
    /// Total memory-system energy (pJ) — Figure 10's quantity.
    pub total_energy_pj: f64,
    /// Average memory-system power in milliwatts.
    pub power_mw: f64,
    /// DRAM row-buffer hit rate.
    pub dram_row_hit_rate: f64,
    /// Prefetcher metadata storage (bits).
    pub storage_bits: u64,
    /// Demand statistics per device, in `DeviceId::ALL` order (only
    /// devices that issued accesses appear). Summing per-device hits and
    /// accesses reproduces the aggregate [`SimResult::hit_rate`] exactly.
    pub device_stats: Vec<DeviceStat>,
}

impl SimResult {
    /// Header row for [`SimResult::csv_row`].
    pub fn csv_header() -> &'static str {
        "workload,prefetcher,accesses,hit_rate,amat_cycles,demand_reads,prefetch_reads,\
         writebacks,useful_prefetches,useful_slp,useful_tlp,late_prefetches,\
         polluting_prefetches,prefetch_accuracy,prefetch_coverage,duration_cycles,\
         total_energy_pj,power_mw,dram_row_hit_rate,storage_bits"
    }

    /// Serialises the record as one CSV row matching [`SimResult::csv_header`].
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.6},{:.3},{},{},{},{},{},{},{},{},{:.6},{:.6},{},{:.1},{:.3},{:.6},{}",
            self.workload,
            self.prefetcher,
            self.accesses,
            self.hit_rate,
            self.amat_cycles,
            self.traffic.demand_reads,
            self.traffic.prefetch_reads,
            self.traffic.writebacks,
            self.useful_prefetches,
            self.useful_slp,
            self.useful_tlp,
            self.late_prefetches,
            self.polluting_prefetches,
            self.prefetch_accuracy,
            self.prefetch_coverage,
            self.duration_cycles,
            self.total_energy_pj,
            self.power_mw,
            self.dram_row_hit_rate,
            self.storage_bits,
        )
    }

    /// Order-stable FNV-1a digest over every field of the record, with
    /// floats hashed by exact bit pattern.
    ///
    /// Two results fingerprint equal iff they are bit-identical, so this
    /// is the cheap currency for cross-run equivalence checks — e.g.
    /// `perf_baseline --stream` pins the streamed engine against the
    /// materialized one by comparing fingerprints, and `ci.sh` replays a
    /// packed trace and `--check`s the recorded value.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        // Strings are length-prefixed so field boundaries stay unambiguous.
        h.str(&self.workload);
        h.str(&self.prefetcher);
        h.u64(self.accesses);
        h.f64(self.hit_rate);
        h.f64(self.amat_cycles);
        h.u64(self.traffic.demand_reads);
        h.u64(self.traffic.prefetch_reads);
        h.u64(self.traffic.writebacks);
        h.u64(self.useful_prefetches);
        h.u64(self.useful_slp);
        h.u64(self.useful_tlp);
        h.u64(self.late_prefetches);
        h.u64(self.polluting_prefetches);
        h.f64(self.prefetch_accuracy);
        h.f64(self.prefetch_coverage);
        h.u64(self.prefetches_filtered);
        h.u64(self.writebacks_dropped);
        h.u64(self.duration_cycles);
        h.f64(self.dram_energy_pj);
        h.f64(self.sc_energy_pj);
        h.f64(self.prefetcher_energy_pj);
        h.f64(self.total_energy_pj);
        h.f64(self.power_mw);
        h.f64(self.dram_row_hit_rate);
        h.u64(self.storage_bits);
        h.u64(self.device_stats.len() as u64);
        for d in &self.device_stats {
            h.str(&d.device);
            h.u64(d.accesses);
            h.u64(d.hits);
            h.f64(d.amat_cycles);
        }
        h.0
    }

    /// AMAT change versus a baseline run; negative is better
    /// (e.g. `-0.243` reproduces "reduced AMAT by 24.3%").
    pub fn amat_delta(&self, baseline: &SimResult) -> f64 {
        if baseline.amat_cycles == 0.0 {
            return 0.0;
        }
        self.amat_cycles / baseline.amat_cycles - 1.0
    }

    /// Power change versus a baseline run; positive is extra power.
    pub fn power_delta(&self, baseline: &SimResult) -> f64 {
        if baseline.power_mw == 0.0 {
            return 0.0;
        }
        self.power_mw / baseline.power_mw - 1.0
    }

    /// Traffic change versus a baseline run; positive is extra traffic.
    pub fn traffic_delta(&self, baseline: &SimResult) -> f64 {
        self.traffic.relative_to(&baseline.traffic) - 1.0
    }
}

/// Incremental 64-bit FNV-1a (see [`SimResult::fingerprint`]).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>5} × {:<18} hit {:>6.2}%  AMAT {:>7.1}  traffic {:>9}  power {:>8.2} mW  \
             acc {:>5.1}%  cov {:>5.1}%",
            self.workload,
            self.prefetcher,
            self.hit_rate * 100.0,
            self.amat_cycles,
            self.traffic.total(),
            self.power_mw,
            self.prefetch_accuracy * 100.0,
            self.prefetch_coverage * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(amat: f64, power: f64, traffic: u64) -> SimResult {
        SimResult {
            workload: "t".into(),
            prefetcher: "x".into(),
            accesses: 100,
            hit_rate: 0.5,
            amat_cycles: amat,
            traffic: TrafficBreakdown { demand_reads: traffic, prefetch_reads: 0, writebacks: 0 },
            useful_prefetches: 0,
            useful_slp: 0,
            useful_tlp: 0,
            late_prefetches: 0,
            polluting_prefetches: 0,
            prefetch_accuracy: 0.0,
            prefetch_coverage: 0.0,
            prefetches_filtered: 0,
            writebacks_dropped: 0,
            duration_cycles: 1000,
            dram_energy_pj: 0.0,
            sc_energy_pj: 0.0,
            prefetcher_energy_pj: 0.0,
            total_energy_pj: 0.0,
            power_mw: power,
            dram_row_hit_rate: 0.0,
            storage_bits: 0,
            device_stats: Vec::new(),
        }
    }

    #[test]
    fn deltas_are_signed_fractions() {
        let base = result(100.0, 50.0, 1000);
        let better = result(75.7, 50.25, 1010);
        assert!((better.amat_delta(&base) + 0.243).abs() < 1e-9);
        assert!((better.power_delta(&base) - 0.005).abs() < 1e-9);
        assert!((better.traffic_delta(&base) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn zero_baselines_are_safe() {
        let zero = result(0.0, 0.0, 0);
        let x = result(10.0, 10.0, 10);
        assert_eq!(x.amat_delta(&zero), 0.0);
        assert_eq!(x.power_delta(&zero), 0.0);
        assert_eq!(x.traffic_delta(&zero), 0.0);
    }

    #[test]
    fn device_stat_hit_rate() {
        let d = DeviceStat { device: "gpu".into(), accesses: 10, hits: 4, amat_cycles: 50.0 };
        assert!((d.hit_rate() - 0.4).abs() < 1e-12);
        let z = DeviceStat { device: "npu".into(), accesses: 0, hits: 0, amat_cycles: 0.0 };
        assert_eq!(z.hit_rate(), 0.0);
    }

    #[test]
    fn csv_row_matches_header_width() {
        let r = result(10.0, 5.0, 100);
        let header_cols = SimResult::csv_header().split(',').count();
        let row_cols = r.csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(r.csv_row().starts_with("t,x,100,"));
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let a = result(10.0, 5.0, 100);
        assert_eq!(a.fingerprint(), a.fingerprint(), "digest must be deterministic");
        let mut float_tweak = a.clone();
        float_tweak.hit_rate = f64::from_bits(float_tweak.hit_rate.to_bits() ^ 1);
        assert_ne!(a.fingerprint(), float_tweak.fingerprint(), "1-ulp float change must show");
        let mut label_tweak = a.clone();
        label_tweak.workload = "u".into();
        assert_ne!(a.fingerprint(), label_tweak.fingerprint());
        let mut device_tweak = a.clone();
        device_tweak.device_stats.push(DeviceStat {
            device: "gpu".into(),
            accesses: 1,
            hits: 1,
            amat_cycles: 30.0,
        });
        assert_ne!(a.fingerprint(), device_tweak.fingerprint());
    }

    #[test]
    fn traffic_total() {
        let t = TrafficBreakdown { demand_reads: 5, prefetch_reads: 3, writebacks: 2 };
        assert_eq!(t.total(), 10);
        assert!(!result(1.0, 1.0, 1).to_string().is_empty());
    }
}
