//! Closed-loop multi-requestor traffic model.
//!
//! Open-loop trace replay injects every demand at its recorded arrival
//! cycle, no matter how congested the memory system is — fine for cache
//! contents and hit rates, but it cannot show *slowdown*: a requestor that
//! stalls on a slow memory system would, in reality, issue its next request
//! later. This module closes the loop: the source [`AccessStream`] is
//! demuxed into per-device request queues on the fly and each device gets
//! a bounded window of outstanding requests. A device only injects its
//! next access once a completion frees a slot, so arrival times are
//! *derived from* memory-system behaviour instead of replayed verbatim.
//! The original inter-access gaps within each stream are kept as think
//! time, so an uncontended device reproduces its recorded schedule
//! exactly. Materialized traces run through the same demux via
//! [`planaria_trace::TraceStream`]; [`TrafficModel::run_stream`] accepts
//! any stream (synthetic renderers, packed-file replay) without holding
//! the trace in memory.
//!
//! With an effectively infinite window no device ever stalls, every access
//! is injected at its original cycle in the original order, and the run is
//! bit-identical to the open-loop simulator — the regression tests pin
//! this, which is what keeps the default open-loop figures trustworthy.
//!
//! # Batch vs. incremental driving
//!
//! [`TrafficModel`] is the batch entry point: it owns the whole run from
//! stream to finished report. Underneath it sits [`ClosedLoopDriver`], a
//! *resumable* form of the same state machine: callers [`offer`] accesses,
//! [`pump`] the simulation forward under an iteration budget, and are told
//! via [`Pump::NeedInput`] exactly when more input could change the next
//! injection. Because the driver only ever consumes input at those
//! explicit boundaries — the same lazy pull-horizon rule the batch loop
//! uses — a run produces bit-identical results no matter how its input is
//! chunked or how often pumping pauses. `planaria-serve` builds on this to
//! multiplex many independent device sessions over a worker pool.
//!
//! [`offer`]: ClosedLoopDriver::offer
//! [`pump`]: ClosedLoopDriver::pump
//!
//! # Examples
//!
//! ```
//! use planaria_sim::experiment::PrefetcherKind;
//! use planaria_sim::{MemorySystem, SystemConfig, TrafficConfig, TrafficModel};
//! use planaria_trace::apps::{profile, AppId};
//!
//! let trace = profile(AppId::HoK).scaled(3_000).build();
//! let sys = MemorySystem::new(SystemConfig::default(), PrefetcherKind::Planaria.build());
//! let (result, report) = TrafficModel::new(TrafficConfig::new(4)).run(sys, &trace);
//!
//! assert_eq!(result.accesses, trace.len() as u64);
//! assert!(!report.devices.is_empty());
//! assert!(report.unfairness >= 1.0);
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use planaria_common::{Cycle, DeviceId, MemAccess};
use planaria_hash::{map_with_capacity, FastHashMap};
use planaria_telemetry::TelemetryReport;
use planaria_trace::stream::AccessStream;
use planaria_trace::Trace;

use crate::metrics::SimResult;
use crate::system::MemorySystem;

/// How far the clock advances per step while every eligible device is
/// stalled (matches the DRAM back-pressure step in the open-loop path).
const TIME_STEP: u64 = 500;

/// Accesses pulled from the source stream per demux refill.
const PULL_CHUNK: usize = 4096;

/// Closed-loop injection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrafficConfig {
    /// Maximum outstanding requests per device (its MSHR/queue budget).
    /// Higher values approach open-loop behaviour; `usize::MAX` reproduces
    /// it exactly.
    pub window: usize,
}

impl TrafficConfig {
    /// A closed-loop configuration with the given per-device window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (a device could never inject anything).
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "closed-loop window must be at least 1");
        Self { window }
    }
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self { window: 8 }
    }
}

/// What the closed loop derived for one device.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceOutcome {
    /// Device label ([`planaria_common::DeviceId::label`]).
    pub device: String,
    /// Accesses the device injected.
    pub accesses: u64,
    /// Cycle of the device's last access in the *recorded* (open-loop)
    /// trace.
    pub open_loop_finish: u64,
    /// Cycle at which the device's last request *completed* in the closed
    /// loop — under contention this exceeds `open_loop_finish` because
    /// injections were delayed by the window.
    pub derived_finish: u64,
    /// Recorded span: last arrival plus the SC hit latency, minus first
    /// arrival (the fastest conceivable completion schedule).
    pub open_loop_span: u64,
    /// Derived span: last completion minus first recorded arrival.
    pub derived_span: u64,
    /// `derived_span / open_loop_span` — 1.0 means the memory system kept
    /// up with the recorded schedule perfectly.
    pub slowdown: f64,
}

/// Per-device outcomes of one closed-loop run plus the headline fairness
/// number.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClosedLoopReport {
    /// The window the run used.
    pub window: usize,
    /// One outcome per device present in the trace, in
    /// [`planaria_common::DeviceId::ALL`] order.
    pub devices: Vec<DeviceOutcome>,
    /// Max slowdown divided by min slowdown across devices (1.0 when fewer
    /// than two devices injected anything). The standard unfairness
    /// metric: 1.0 is perfectly fair, larger means some requestor is
    /// disproportionately throttled.
    pub unfairness: f64,
}

/// Per-device injection state during a closed-loop run.
///
/// One slot exists per [`DeviceId`]; slots whose device never appears in
/// the source stream stay inert (`first_arrival` remains `None`).
#[derive(Debug)]
struct DevState {
    /// Demuxed-but-not-yet-injected accesses, as `(stream position,
    /// access)` — the position is the tiebreak that reproduces the
    /// recorded trace order.
    buf: VecDeque<(u64, MemAccess)>,
    /// Requests injected but not yet completed.
    outstanding: usize,
    /// Earliest cycle the next access may inject (first arrival, then
    /// previous injection plus the recorded think-time gap). Only valid
    /// while `need_gap` is false.
    next_ready: Cycle,
    /// The head-of-buffer think-time gap has not been applied yet (the
    /// successor access may not even be demuxed yet, so the gap is
    /// resolved lazily once it is visible).
    need_gap: bool,
    /// Clock at which the previous access was injected.
    last_inject: Cycle,
    /// Recorded cycle of the previous injected access.
    last_recorded: Cycle,
    /// Completion cycle of the latest retired request.
    last_completion: Cycle,
    /// First recorded arrival (span baseline); `None` until the device
    /// first appears.
    first_arrival: Option<Cycle>,
    /// Last recorded arrival seen so far (open-loop finish baseline).
    last_arrival: Cycle,
    /// Total accesses demuxed to this device.
    seen: u64,
}

impl DevState {
    fn new() -> Self {
        Self {
            buf: VecDeque::new(),
            outstanding: 0,
            next_ready: Cycle::ZERO,
            need_gap: false,
            last_inject: Cycle::ZERO,
            last_recorded: Cycle::ZERO,
            last_completion: Cycle::ZERO,
            first_arrival: None,
            last_arrival: Cycle::ZERO,
            seen: 0,
        }
    }
}

/// Why [`ClosedLoopDriver::pump`] returned control to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pump {
    /// More input could change the next injection: every buffered access
    /// near the horizon has been considered, the source is not closed, and
    /// the selection cannot be finalised until either more accesses are
    /// [`offer`]ed or the driver is [`close`]d.
    ///
    /// [`offer`]: ClosedLoopDriver::offer
    /// [`close`]: ClosedLoopDriver::close
    NeedInput,
    /// The iteration budget ran out mid-run. Pump again to continue;
    /// pausing here never changes results.
    Budget,
    /// The driver is closed and every buffered access has been injected.
    /// The session is ready for [`ClosedLoopDriver::finish`].
    Drained,
}

/// Resumable core of the closed-loop traffic model.
///
/// The driver demuxes a cycle-sorted access sequence into per-device
/// bounded windows and injects into a [`MemorySystem`] under virtual time,
/// exactly like [`TrafficModel`] — but input arrives by [`offer`] and the
/// simulation advances by [`pump`] under an explicit iteration budget, so
/// a caller can interleave many independent sessions (the `planaria-serve`
/// use case) or feed from any source.
///
/// # Determinism
///
/// The driver consumes buffered input only when pumping reports
/// [`Pump::NeedInput`], and selection re-runs from scratch after every
/// refill, so the final run is a pure function of the offered access
/// sequence: chunk sizes, budget pauses, and offer/pump interleavings are
/// all invisible. [`TrafficModel`] is a thin wrapper over this driver, and
/// the streaming regression tests pin the equivalence.
///
/// [`offer`]: ClosedLoopDriver::offer
/// [`pump`]: ClosedLoopDriver::pump
///
/// # Examples
///
/// ```
/// use planaria_core::NullPrefetcher;
/// use planaria_sim::{ClosedLoopDriver, MemorySystem, Pump, SystemConfig, TrafficConfig};
/// use planaria_trace::apps::{profile, AppId};
///
/// let trace = profile(AppId::HoK).scaled(500).build();
/// let mut sys = MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new()));
/// let mut driver = ClosedLoopDriver::new(TrafficConfig::new(4));
///
/// for access in trace.accesses() {
///     driver.offer(access);
/// }
/// driver.close();
/// while driver.pump(&mut sys, 64) != Pump::Drained {}
/// let (result, report, _telemetry) = driver.finish(sys, "hok");
///
/// assert_eq!(result.accesses, trace.len() as u64);
/// assert_eq!(report.window, 4);
/// ```
#[derive(Debug)]
pub struct ClosedLoopDriver {
    cfg: TrafficConfig,
    devs: Vec<DevState>,
    /// Demand misses waiting on a DRAM fill: block number -> the local
    /// dev-slot of every waiting injection (one entry per merged miss).
    waiting: FastHashMap<u64, Vec<usize>>,
    /// SC hits complete after the fixed lookup latency.
    hit_heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Scratch buffer for draining the completion log.
    log: Vec<(u64, Cycle)>,
    clock: Cycle,
    /// Stream position of the next offered access (injection tiebreak).
    seq: u64,
    /// Recorded cycle of the last offered access; every not-yet-offered
    /// access arrives at or after this (sources are cycle-sorted), which
    /// is what makes the bounded pull horizon sound.
    last_cycle: Cycle,
    /// No further input will arrive ([`ClosedLoopDriver::close`]).
    closed: bool,
    /// The clock has been initialised from the first arrival.
    primed: bool,
    /// The memory system's completion log has been enabled.
    enabled: bool,
    /// Offered-but-not-yet-injected accesses across all devices.
    buffered: usize,
    /// Total accesses injected so far.
    injected: u64,
}

impl ClosedLoopDriver {
    /// A fresh driver with the given closed-loop configuration.
    pub fn new(cfg: TrafficConfig) -> Self {
        Self {
            cfg,
            devs: (0..DeviceId::COUNT).map(|_| DevState::new()).collect(),
            waiting: map_with_capacity(256),
            hit_heap: BinaryHeap::new(),
            log: Vec::new(),
            clock: Cycle::ZERO,
            seq: 0,
            last_cycle: Cycle::ZERO,
            closed: false,
            primed: false,
            enabled: false,
            buffered: 0,
            injected: 0,
        }
    }

    /// Queues one access for injection, demuxing it to its device's
    /// buffer. Accesses must be offered in stream order (cycle-sorted;
    /// equal cycles keep their offer order), and offering after
    /// [`close`](ClosedLoopDriver::close) is a bug.
    ///
    /// # Panics
    ///
    /// Panics if the driver is already closed.
    pub fn offer(&mut self, a: &MemAccess) {
        assert!(!self.closed, "offer after close");
        debug_assert!(a.cycle >= self.last_cycle, "accesses must be offered cycle-sorted");
        let d = &mut self.devs[a.device.index()];
        if d.first_arrival.is_none() {
            d.first_arrival = Some(a.cycle);
            d.next_ready = a.cycle;
        }
        d.last_arrival = a.cycle;
        d.seen += 1;
        d.buf.push_back((self.seq, *a));
        self.seq += 1;
        self.last_cycle = a.cycle;
        self.buffered += 1;
    }

    /// Declares end-of-input: no further [`offer`](ClosedLoopDriver::offer)
    /// calls will arrive. Idempotent. Pumping after close drains every
    /// buffered access and then reports [`Pump::Drained`].
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Whether [`close`](ClosedLoopDriver::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Offered-but-not-yet-injected accesses across all devices.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Total accesses injected into the memory system so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The driver's virtual clock (the cycle of the most recent injection
    /// or stall step). Purely simulated time — the driver never reads a
    /// wall clock.
    pub fn now(&self) -> Cycle {
        self.clock
    }

    /// Advances the simulation by at most `budget` iterations (an
    /// iteration is one injection or one stall step of the virtual
    /// clock). Returns why control came back; see [`Pump`]. Re-pumping
    /// after [`Pump::NeedInput`] or [`Pump::Budget`] resumes exactly
    /// where the run left off.
    pub fn pump(&mut self, sys: &mut MemorySystem, mut budget: usize) -> Pump {
        if !self.enabled {
            sys.enable_completion_log();
            self.enabled = true;
        }
        if !self.primed {
            // Prime the clock from the first recorded arrival, exactly
            // like the batch model does after its first demux pull.
            if self.buffered == 0 {
                if !self.closed {
                    return Pump::NeedInput;
                }
                self.primed = true;
                return Pump::Drained;
            }
            self.clock =
                self.devs.iter().filter_map(|d| d.first_arrival).min().unwrap_or(Cycle::ZERO);
            self.primed = true;
        }
        let sc_hit_latency = sys.sc_hit_latency();

        loop {
            if budget == 0 {
                return Pump::Budget;
            }
            // Retire everything the memory system completed up to `clock`.
            // Re-entering after a pause re-runs this as a no-op (no time
            // passed, nothing new completed).
            sys.drain_completion_log(&mut self.log);
            for (block, finish) in self.log.drain(..) {
                if let Some(ws) = self.waiting.remove(&block) {
                    for slot in ws {
                        self.devs[slot].outstanding -= 1;
                        self.devs[slot].last_completion =
                            self.devs[slot].last_completion.max(finish);
                    }
                }
            }
            while let Some(&Reverse((finish, slot))) = self.hit_heap.peek() {
                if finish > self.clock.as_u64() {
                    break;
                }
                self.hit_heap.pop();
                self.devs[slot].outstanding -= 1;
                self.devs[slot].last_completion =
                    self.devs[slot].last_completion.max(Cycle::new(finish));
            }

            // The next injection: among devices with a buffered access and
            // a free window slot, the earliest (ready time, stream
            // position) — the tiebreak reproduces the trace's stable sort
            // order, so an infinite window degenerates to exact open-loop
            // replay. The selection is only final once no not-yet-offered
            // access could beat the candidate: a device never injects
            // before its recorded arrival, unseen arrivals are at or after
            // `last_cycle`, and ties go to the lower stream position, so
            // the caller must refill until `last_cycle` passes the
            // candidate's injection time (or close). Selection is a pure
            // function of buffered state, so it simply re-runs after every
            // refill.
            let mut candidate: Option<(Cycle, u64, usize)> = None;
            let mut any_stalled = false;
            for (slot, d) in self.devs.iter_mut().enumerate() {
                let Some(&(seq, front)) = d.buf.front() else {
                    // Empty buffer: if the device is window-full it may
                    // still have unseen input left, so treat it as
                    // stalled; otherwise any unseen access of its loses
                    // the selection anyway (it arrives at or after
                    // `last_cycle`, past the pull horizon).
                    if !self.closed && d.outstanding >= self.cfg.window {
                        any_stalled = true;
                    }
                    continue;
                };
                if d.outstanding >= self.cfg.window {
                    any_stalled = true;
                    continue;
                }
                if d.need_gap {
                    // Preserve the recorded think time to this access.
                    d.next_ready = d.last_inject + front.cycle.since(d.last_recorded);
                    d.need_gap = false;
                }
                let t = d.next_ready.max(self.clock);
                if candidate.is_none_or(|c| (c.0, c.1) > (t, seq)) {
                    candidate = Some((t, seq, slot));
                }
            }
            let bound = match candidate {
                Some((t, _, _)) => t,
                None => self.clock + TIME_STEP,
            };
            if !self.closed && self.last_cycle <= bound {
                return Pump::NeedInput;
            }

            let Some((t, _, slot)) = candidate else {
                if self.closed && self.buffered == 0 {
                    return Pump::Drained; // fully injected; tail drains in finish
                }
                // Every remaining device is window-stalled: let time pass
                // until completions free a slot.
                self.clock += TIME_STEP;
                sys.advance(self.clock);
                budget -= 1;
                continue;
            };

            if t > self.clock {
                if any_stalled {
                    // A stalled device freed by an earlier completion could
                    // preempt this candidate, so approach `t` in bounded
                    // steps, retiring completions along the way.
                    self.clock = t.min(self.clock + TIME_STEP);
                    sys.advance(self.clock);
                    budget -= 1;
                    continue;
                }
                // Nobody is stalled, so no completion can change the
                // candidate: jump straight to the injection time. The
                // system is *not* advanced here — `process` pumps the DRAM
                // at the access cycle itself, exactly as open loop does.
                self.clock = t;
            }

            let (_, recorded) = self.devs[slot].buf.pop_front().expect("candidate head present");
            self.buffered -= 1;
            let access = MemAccess { cycle: self.clock, ..recorded };
            let hit = sys.process_tracked(&access);
            let d = &mut self.devs[slot];
            d.outstanding += 1;
            d.last_inject = self.clock;
            d.last_recorded = recorded.cycle;
            d.need_gap = true;
            if hit {
                self.hit_heap.push(Reverse((self.clock.as_u64() + sc_hit_latency, slot)));
            } else {
                self.waiting.entry(access.addr.block_number()).or_default().push(slot);
            }
            self.injected += 1;
            budget -= 1;
        }
    }

    /// Finalises a drained session: settles in-flight requests, tears the
    /// memory system down, and derives the per-device closed-loop report.
    ///
    /// # Panics
    ///
    /// Panics unless the driver was closed and pumped to
    /// [`Pump::Drained`] first.
    pub fn finish(
        mut self,
        sys: MemorySystem,
        workload: &str,
    ) -> (SimResult, ClosedLoopReport, TelemetryReport) {
        assert!(
            self.closed && self.buffered == 0,
            "finish requires a closed driver pumped to Drained"
        );
        let sc_hit_latency = sys.sc_hit_latency();
        // Settle what is still in flight: hits complete unconditionally,
        // misses at whatever completion time the final DRAM drain reports.
        while let Some(Reverse((finish, slot))) = self.hit_heap.pop() {
            self.devs[slot].outstanding -= 1;
            self.devs[slot].last_completion =
                self.devs[slot].last_completion.max(Cycle::new(finish));
        }
        let (result, _, telemetry, tail) = sys.finish_parts_logged(workload);
        for (block, finish) in tail {
            if let Some(ws) = self.waiting.remove(&block) {
                for slot in ws {
                    self.devs[slot].outstanding -= 1;
                    self.devs[slot].last_completion = self.devs[slot].last_completion.max(finish);
                }
            }
        }
        debug_assert!(self.devs.iter().all(|d| d.outstanding == 0), "all requests must retire");

        let outcomes: Vec<DeviceOutcome> = self
            .devs
            .iter()
            .enumerate()
            .filter_map(|(slot, d)| {
                let first_arrival = d.first_arrival?;
                let open_loop_span = (d.last_arrival + sc_hit_latency).since(first_arrival).max(1);
                let derived_span = d.last_completion.since(first_arrival).max(1);
                Some(DeviceOutcome {
                    device: DeviceId::from_index(slot).label().to_string(),
                    accesses: d.seen,
                    open_loop_finish: d.last_arrival.as_u64(),
                    derived_finish: d.last_completion.as_u64(),
                    open_loop_span,
                    derived_span,
                    slowdown: derived_span as f64 / open_loop_span as f64,
                })
            })
            .collect();
        let unfairness = {
            let max = outcomes.iter().map(|o| o.slowdown).fold(f64::MIN, f64::max);
            let min = outcomes.iter().map(|o| o.slowdown).fold(f64::MAX, f64::min);
            if outcomes.len() < 2 || min <= 0.0 {
                1.0
            } else {
                max / min
            }
        };
        let report = ClosedLoopReport { window: self.cfg.window, devices: outcomes, unfairness };
        (result, report, telemetry)
    }
}

/// Drives a [`MemorySystem`] with closed-loop, per-device injection.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrafficModel {
    cfg: TrafficConfig,
}

impl TrafficModel {
    /// A model injecting with the given configuration.
    pub fn new(cfg: TrafficConfig) -> Self {
        Self { cfg }
    }

    /// Runs the whole trace closed-loop and finalises the result.
    pub fn run(self, sys: MemorySystem, trace: &Trace) -> (SimResult, ClosedLoopReport) {
        let (result, report, _) = self.run_telemetry(sys, trace);
        (result, report)
    }

    /// [`TrafficModel::run`], additionally returning the merged
    /// [`TelemetryReport`] (same contract as
    /// [`MemorySystem::run_telemetry`]).
    pub fn run_telemetry(
        self,
        sys: MemorySystem,
        trace: &Trace,
    ) -> (SimResult, ClosedLoopReport, TelemetryReport) {
        // Materialized runs ride the streamed demux over a borrowing
        // adapter — one code path, pinned identical by the regression
        // tests.
        self.run_stream_telemetry(sys, &mut trace.stream())
    }

    /// [`TrafficModel::run`] over an [`AccessStream`]: the closed loop
    /// demuxes the stream into per-device windows on the fly, so runs of
    /// any length need only the accesses near the current injection
    /// horizon in memory.
    ///
    /// # Panics
    ///
    /// Panics if the stream ends with a latched
    /// [`planaria_trace::io::ParseTraceError`].
    pub fn run_stream(
        self,
        sys: MemorySystem,
        stream: &mut dyn AccessStream,
    ) -> (SimResult, ClosedLoopReport) {
        let (result, report, _) = self.run_stream_telemetry(sys, stream);
        (result, report)
    }

    /// [`TrafficModel::run_stream`], additionally returning the merged
    /// [`TelemetryReport`].
    ///
    /// # Panics
    ///
    /// As [`TrafficModel::run_stream`].
    pub fn run_stream_telemetry(
        self,
        mut sys: MemorySystem,
        stream: &mut dyn AccessStream,
    ) -> (SimResult, ClosedLoopReport, TelemetryReport) {
        let name = stream.name().to_string();
        let mut driver = ClosedLoopDriver::new(self.cfg);
        let mut chunk: Vec<MemAccess> = Vec::new();
        let mut pulled: u64 = 0;
        loop {
            match driver.pump(&mut sys, usize::MAX) {
                Pump::NeedInput => {
                    if stream.next_chunk(PULL_CHUNK, &mut chunk) == 0 {
                        if let Some(e) = stream.error() {
                            panic!("trace stream {name:?} failed after {pulled} accesses: {e}");
                        }
                        driver.close();
                    } else {
                        pulled += chunk.len() as u64;
                        for a in &chunk {
                            driver.offer(a);
                        }
                    }
                }
                Pump::Budget => {}
                Pump::Drained => break,
            }
        }
        driver.finish(sys, &name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use planaria_core::NullPrefetcher;
    use planaria_trace::apps::{profile, AppId};

    fn small_trace() -> Trace {
        profile(AppId::HoK).scaled(2_000).build()
    }

    #[test]
    fn infinite_window_matches_open_loop() {
        let trace = small_trace();
        let open =
            MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new())).run(&trace);
        let (closed, report) = TrafficModel::new(TrafficConfig { window: usize::MAX }).run(
            MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new())),
            &trace,
        );
        assert_eq!(open, closed, "infinite window must reproduce open loop bit-for-bit");
        assert_eq!(report.window, usize::MAX);
    }

    #[test]
    fn small_window_throttles_injection() {
        let trace = small_trace();
        let (r, report) = TrafficModel::new(TrafficConfig::new(1)).run(
            MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new())),
            &trace,
        );
        assert_eq!(r.accesses, trace.len() as u64, "every access still injects");
        assert!(
            report.devices.iter().any(|d| d.derived_finish > d.open_loop_finish),
            "window=1 must delay at least one device past its recorded schedule"
        );
        assert!(report.unfairness >= 1.0);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_rejected() {
        let _ = TrafficConfig::new(0);
    }

    #[test]
    fn streamed_closed_loop_matches_materialized() {
        // A tight window (heavy contention) through a WorkloadStream must
        // reproduce the materialized closed loop bit-for-bit.
        let spec = profile(AppId::HoK).scaled(2_000);
        let trace = spec.build();
        let mk = || MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new()));
        let (mat, mat_report) = TrafficModel::new(TrafficConfig::new(2)).run(mk(), &trace);
        let (str_r, str_report) =
            TrafficModel::new(TrafficConfig::new(2)).run_stream(mk(), &mut spec.stream());
        assert_eq!(mat, str_r, "closed-loop result diverged between streamed and materialized");
        assert_eq!(mat_report, str_report);
    }

    #[test]
    fn driver_is_chunking_and_budget_invariant() {
        // The resumable driver must produce the batch model's result no
        // matter how its input is chunked or how tightly pumping is
        // budgeted — that independence is what makes served sessions and
        // snapshot replay bit-identical to uninterrupted runs.
        let trace = small_trace();
        let mk = || MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new()));
        let (batch, batch_report, _) =
            TrafficModel::new(TrafficConfig::new(2)).run_telemetry(mk(), &trace);

        for (chunk, budget) in [(1usize, 1usize), (7, 3), (4096, usize::MAX)] {
            let mut sys = mk();
            let mut driver = ClosedLoopDriver::new(TrafficConfig::new(2));
            let mut next = 0usize;
            loop {
                match driver.pump(&mut sys, budget) {
                    Pump::NeedInput => {
                        if next >= trace.len() {
                            driver.close();
                        } else {
                            let end = (next + chunk).min(trace.len());
                            for a in &trace.accesses()[next..end] {
                                driver.offer(a);
                            }
                            next = end;
                        }
                    }
                    Pump::Budget => {}
                    Pump::Drained => break,
                }
            }
            let (r, report, _) = driver.finish(sys, trace.name());
            assert_eq!(batch, r, "driver diverged at chunk={chunk} budget={budget}");
            assert_eq!(batch_report, report, "report diverged at chunk={chunk} budget={budget}");
        }
    }
}
