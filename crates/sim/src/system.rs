//! The memory-system event loop.

use planaria_cache::{AccessResult, CacheConfig, PrefetchQueue, SetAssocCache};
use planaria_common::{Cycle, DeviceId, MemAccess, PhysAddr, PrefetchOrigin, PrefetchRequest};
use planaria_core::Prefetcher;
use planaria_dram::{Completion, DramConfig, MemoryController, Priority};
use planaria_hash::{map_with_capacity, FastHashMap};
use planaria_telemetry::{EventKind, Telemetry, TelemetryConfig, TelemetryReport};
use planaria_trace::stream::AccessStream;

use crate::metrics::{DeviceStat, SimResult, TrafficBreakdown};

/// Accesses pulled per [`AccessStream::next_chunk`] call on the streamed
/// run paths — large enough to amortise per-chunk overhead, small enough
/// that the engine's working buffer stays cache-resident and steady-state
/// memory is flat regardless of trace length.
pub const STREAM_CHUNK: usize = 8192;

/// Feedback-directed prefetch throttling (Srinath et al., HPCA 2007
/// style): the controller samples prefetch accuracy over fixed intervals
/// and gates the prefetcher's requests while accuracy is poor.
///
/// Orthogonal to the prefetcher: a governor can tame an inaccurate
/// prefetcher's traffic (at the cost of its remaining coverage), while an
/// accurate one never trips it — which is exactly the comparison the
/// `ablation_governor` harness runs.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GovernorConfig {
    /// Demand accesses per sampling interval.
    pub interval: u64,
    /// Accuracy below which prefetching is gated for the next interval.
    pub low_accuracy: f64,
    /// Minimum prefetch fills in an interval before the verdict counts
    /// (avoids gating on noise).
    pub min_samples: u64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self { interval: 10_000, low_accuracy: 0.4, min_samples: 64 }
    }
}

/// Full-system configuration (Table 1 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// System-cache geometry.
    pub cache: CacheConfig,
    /// LPDDR4 controller configuration.
    pub dram: DramConfig,
    /// SC lookup/hit latency in cycles.
    pub sc_hit_latency: u64,
    /// Prefetch-queue capacity (Figure 1's staging queue).
    pub prefetch_queue_cap: usize,
    /// Energy of one SC data access (pJ) — demand hits and all fills.
    pub sc_access_pj: f64,
    /// Energy of one prefetcher metadata-table access (pJ).
    pub table_access_pj: f64,
    /// Memory-controller clock (Hz), for absolute power reporting.
    pub clock_hz: f64,
    /// Optional feedback-directed prefetch throttling.
    pub governor: Option<GovernorConfig>,
    /// Decision tracing (counting always on; `events` opts into full
    /// event capture).
    pub telemetry: TelemetryConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            cache: CacheConfig::system_cache(),
            dram: DramConfig::lpddr4(),
            sc_hit_latency: 30,
            prefetch_queue_cap: 64,
            sc_access_pj: 500.0,
            table_access_pj: 15.0,
            clock_hz: 1.6e9,
            governor: None,
            telemetry: TelemetryConfig::counting(),
        }
    }
}

/// Demand accesses waiting on one in-flight fill: each entry is the
/// demand's arrival cycle plus its device index (for per-device latency
/// attribution).
///
/// Almost every fill has zero or one waiter, so the first two live inline
/// and the steady-state miss path never heap-allocates; only pathological
/// merge storms touch the spill vector.
#[derive(Debug, Clone)]
struct WaiterList {
    inline: [(Cycle, u8); 2],
    len: u8,
    spill: Vec<(Cycle, u8)>,
}

impl Default for WaiterList {
    fn default() -> Self {
        Self { inline: [(Cycle::ZERO, 0); 2], len: 0, spill: Vec::new() }
    }
}

impl WaiterList {
    fn one(first: Cycle, device: u8) -> Self {
        Self { inline: [(first, device), (Cycle::ZERO, 0)], len: 1, spill: Vec::new() }
    }

    fn push(&mut self, cycle: Cycle, device: u8) {
        if (self.len as usize) < self.inline.len() {
            self.inline[self.len as usize] = (cycle, device);
            self.len += 1;
        } else {
            self.spill.push((cycle, device));
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn iter(&self) -> impl Iterator<Item = (Cycle, u8)> + '_ {
        self.inline[..self.len as usize].iter().copied().chain(self.spill.iter().copied())
    }

    fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }
}

#[derive(Debug, Clone)]
struct Inflight {
    /// `Some(origin)` while the outstanding fill is still speculative.
    origin: Option<PrefetchOrigin>,
    /// Demand accesses (arrival cycle, device index) waiting on this fill.
    waiters: WaiterList,
    /// A waiting demand was a write: the fill must land dirty
    /// (write-allocate semantics).
    wrote: bool,
    /// Device index of the requester that caused the fill (the missing
    /// demand's device, or the prefetch trigger's device).
    device: u8,
}

/// The trace-driven memory system: SC + prefetcher + LPDDR4.
pub struct MemorySystem {
    cfg: SystemConfig,
    sc: SetAssocCache,
    dram: MemoryController,
    prefetcher: Box<dyn Prefetcher>,
    queue: PrefetchQueue,
    /// Outstanding fills keyed by block number.
    inflight: FastHashMap<u64, Inflight>,
    scratch: Vec<PrefetchRequest>,
    /// Reusable DRAM-completion buffer (see [`MemorySystem::pump_dram`]).
    completions: Vec<Completion>,
    /// System-side lifecycle telemetry (issued/filled/used/evicted/late);
    /// the prefetcher carries its own handle for decision events.
    tel: Telemetry,
    // --- accumulated metrics ---
    latency_sum: f64,
    demand_count: u64,
    late_prefetches: u64,
    prefetches_issued: u64,
    prefetches_filtered: u64,
    writebacks_dropped: u64,
    /// Demand latency accumulated per device (always integer-valued, so
    /// the per-device sums reproduce `latency_sum` exactly).
    device_lat: [f64; DeviceId::COUNT],
    /// When `Some`, every retired DRAM read is logged as
    /// `(block_number, finish)` for the closed-loop traffic model to
    /// drain; `None` (the open-loop default) costs nothing.
    completion_log: Option<Vec<(u64, Cycle)>>,
    /// Governor state: (interval-start useful, interval-start fills,
    /// accesses into interval, currently gated).
    governor_state: GovernorState,
    first_cycle: Option<Cycle>,
    last_cycle: Cycle,
}

#[derive(Debug, Clone, Copy, Default)]
struct GovernorState {
    interval_accesses: u64,
    useful_at_start: u64,
    fills_at_start: u64,
    gated: bool,
    /// Round-robin probe counter: while gated, one request in
    /// [`GOVERNOR_PROBE_PERIOD`] still goes out so accuracy keeps being
    /// sampled (otherwise a gated prefetcher could never redeem itself).
    probe: u64,
    /// Prefetch requests suppressed by the governor (reported for tests).
    suppressed: u64,
}

/// While gated, 1 in this many requests is let through as a probe.
const GOVERNOR_PROBE_PERIOD: u64 = 8;

impl MemorySystem {
    /// Builds a system around a prefetcher, handing it the configured
    /// telemetry (instrumented prefetchers start tracing immediately).
    pub fn new(cfg: SystemConfig, mut prefetcher: Box<dyn Prefetcher>) -> Self {
        prefetcher.configure_telemetry(&cfg.telemetry);
        Self {
            sc: SetAssocCache::new(cfg.cache),
            dram: MemoryController::new(cfg.dram),
            prefetcher,
            queue: PrefetchQueue::new(cfg.prefetch_queue_cap),
            inflight: map_with_capacity(256),
            scratch: Vec::new(),
            completions: Vec::new(),
            tel: Telemetry::from_config(&cfg.telemetry),
            latency_sum: 0.0,
            demand_count: 0,
            late_prefetches: 0,
            prefetches_issued: 0,
            prefetches_filtered: 0,
            writebacks_dropped: 0,
            device_lat: [0.0; DeviceId::COUNT],
            completion_log: None,
            governor_state: GovernorState::default(),
            first_cycle: None,
            last_cycle: Cycle::ZERO,
            cfg,
        }
    }

    /// The prefetcher's display name.
    pub fn prefetcher_name(&self) -> &str {
        self.prefetcher.name()
    }

    /// The cumulative SC demand hit rate so far (for live progress views;
    /// the authoritative numbers come from [`MemorySystem::finish`]).
    pub fn interim_hit_rate(&self) -> f64 {
        self.sc.stats().hit_rate()
    }

    /// Prefetch requests suppressed by the governor so far.
    pub fn governor_suppressed(&self) -> u64 {
        self.governor_state.suppressed
    }

    /// Advances the governor's interval clock; returns whether prefetch
    /// requests are currently gated.
    fn governor_tick(&mut self) -> bool {
        let Some(gov) = self.cfg.governor else { return false };
        let g = &mut self.governor_state;
        g.interval_accesses += 1;
        if g.interval_accesses >= gov.interval {
            let stats = self.sc.stats();
            let fills = stats.prefetch_fills - g.fills_at_start;
            let useful = stats.useful_prefetches - g.useful_at_start;
            if fills >= gov.min_samples {
                let accuracy = useful as f64 / fills as f64;
                g.gated = accuracy < gov.low_accuracy;
            }
            // Too few samples: keep the previous verdict (the probe stream
            // keeps feeding samples while gated).
            g.interval_accesses = 0;
            g.fills_at_start = stats.prefetch_fills;
            g.useful_at_start = stats.useful_prefetches;
        }
        g.gated
    }

    fn handle_completion(&mut self, c: Completion) {
        if c.is_write {
            return; // writeback retired; nothing waits on it
        }
        if let Some(log) = &mut self.completion_log {
            log.push((c.addr.block_number(), c.finish));
        }
        let Some(entry) = self.inflight.remove(&c.addr.block_number()) else {
            return;
        };
        // Waiting demands pay the residual memory latency, each charged to
        // the device that issued the waiting demand.
        for (w, dev) in entry.waiters.iter() {
            let lat = (self.cfg.sc_hit_latency + c.finish.since(w)) as f64;
            self.latency_sum += lat;
            self.device_lat[dev as usize] += lat;
        }
        // A prefetch nobody consumed fills speculatively; anything a demand
        // waited on fills as a demand line.
        let origin = if entry.waiters.is_empty() { entry.origin } else { None };
        let filler = DeviceId::from_index(entry.device as usize);
        let evicted = self.sc.fill_by(c.addr, origin, filler);
        if let Some(o) = origin {
            self.tel.lifecycle_for(EventKind::PrefetchFilled, o, filler, c.addr.as_u64(), c.finish);
        }
        if entry.wrote {
            self.sc.mark_dirty(c.addr);
        }
        if let Some(e) = evicted {
            if e.was_unused_prefetch {
                if let Some(o) = e.origin {
                    self.tel.lifecycle_for(
                        EventKind::PrefetchEvictedUnused,
                        o,
                        e.device,
                        e.addr.as_u64(),
                        c.finish,
                    );
                }
            }
            if e.dirty {
                self.enqueue_writeback(e.addr, c.finish);
            }
        }
    }

    /// Advances wall-clock time without injecting an access: DRAM services
    /// whatever it holds up to `now` and completions retire. The
    /// closed-loop traffic model uses this to let time pass while every
    /// requestor's window is full; open-loop runs never need it.
    ///
    /// Deliberately leaves `last_cycle` (the last *demand arrival*) alone,
    /// so the end-of-run drain in [`MemorySystem::finish`] behaves
    /// identically whether or not the clock was advanced past the final
    /// access.
    pub fn advance(&mut self, now: Cycle) {
        self.pump_dram(now);
    }

    /// Starts recording `(block_number, finish)` for every retired DRAM
    /// read (closed-loop mode only; the log is off by default).
    pub(crate) fn enable_completion_log(&mut self) {
        self.completion_log = Some(Vec::new());
    }

    /// Moves all logged completions into `out`, leaving the log empty.
    pub(crate) fn drain_completion_log(&mut self, out: &mut Vec<(u64, Cycle)>) {
        if let Some(log) = &mut self.completion_log {
            out.append(log);
        }
    }

    /// The configured SC lookup/hit latency (closed-loop completion time
    /// of a demand hit).
    pub(crate) fn sc_hit_latency(&self) -> u64 {
        self.cfg.sc_hit_latency
    }

    /// [`MemorySystem::pump_dram`] with the completion buffer supplied by
    /// the caller, so batch processing moves it out of `self` once per
    /// chunk instead of once per access.
    fn pump_dram_into(&mut self, now: Cycle, buf: &mut Vec<Completion>) {
        self.dram.advance_to(now, buf);
        for c in buf.drain(..) {
            self.handle_completion(c);
        }
    }

    fn pump_dram(&mut self, now: Cycle) {
        // The buffer is moved out of `self` for the duration of the loop so
        // `handle_completion(&mut self)` can run; it is handed back (still
        // holding its capacity) afterwards, so steady state never allocates.
        let mut buf = std::mem::take(&mut self.completions);
        self.pump_dram_into(now, &mut buf);
        self.completions = buf;
    }

    /// Forces queue room for a must-issue request by servicing the DRAM
    /// forward in bounded steps (models controller backpressure).
    fn make_room(&mut self, addr: PhysAddr, mut now: Cycle, buf: &mut Vec<Completion>) -> Cycle {
        while !self.dram.has_room_for(addr) {
            now += 500;
            self.pump_dram_into(now, buf);
        }
        now
    }

    fn enqueue_writeback(&mut self, addr: PhysAddr, now: Cycle) {
        if !self.dram.has_room_for(addr) {
            // Writebacks are fire-and-forget; under extreme pressure we
            // drop rather than deadlock the trace loop, and count it.
            self.writebacks_dropped += 1;
            return;
        }
        self.dram.try_enqueue(addr, true, Priority::Writeback, now).expect("room checked");
    }

    /// Feeds one demand access through the system.
    pub fn process(&mut self, access: &MemAccess) {
        let _ = self.process_tracked(access);
    }

    /// Feeds a chunk of demand accesses through the system.
    ///
    /// Behaviourally identical to calling [`MemorySystem::process`] per
    /// access — the per-access feedback loop (prefetches fill the cache and
    /// change later hit/miss outcomes) rules out any coarser dispatch — but
    /// the reusable completion/scratch buffers move out of `self` once per
    /// chunk instead of once per access, so the per-access overhead is
    /// amortised across the batch.
    pub fn process_batch(&mut self, batch: &[MemAccess]) {
        let mut buf = std::mem::take(&mut self.completions);
        let mut scratch = std::mem::take(&mut self.scratch);
        for access in batch {
            self.step_access(access, &mut buf, &mut scratch);
        }
        self.completions = buf;
        self.scratch = scratch;
    }

    /// [`MemorySystem::process`], additionally reporting whether the access
    /// hit in the SC (`true`) or must wait on a DRAM fill (`false`). The
    /// closed-loop traffic model needs the distinction to decide when the
    /// requestor's window slot frees.
    pub(crate) fn process_tracked(&mut self, access: &MemAccess) -> bool {
        let mut buf = std::mem::take(&mut self.completions);
        let mut scratch = std::mem::take(&mut self.scratch);
        let was_hit = self.step_access(access, &mut buf, &mut scratch);
        self.completions = buf;
        self.scratch = scratch;
        was_hit
    }

    /// One demand access against caller-held scratch buffers (the batched
    /// dispatch hoists the buffer handoff out of the access loop).
    fn step_access(
        &mut self,
        access: &MemAccess,
        buf: &mut Vec<Completion>,
        scratch: &mut Vec<PrefetchRequest>,
    ) -> bool {
        let now = access.cycle;
        let device = access.device;
        let dev_idx = device.index() as u8;
        self.first_cycle.get_or_insert(now);
        self.last_cycle = self.last_cycle.max(now);
        self.pump_dram_into(now, buf);
        self.demand_count += 1;

        let block_addr = access.addr.block_base();
        let result = self.sc.access_by(access.addr, access.kind, device);
        // The first demand touch of a prefetched line re-triggers the
        // prefetcher exactly like a miss would (the standard
        // "prefetched hit" trigger) — without it, a chain of next-line
        // prefetches would stall after every successful step.
        let covered_hit = matches!(result, AccessResult::Hit { first_use_of_prefetch: None });
        let was_hit = result.is_hit();
        match result {
            AccessResult::Hit { first_use_of_prefetch } => {
                self.latency_sum += self.cfg.sc_hit_latency as f64;
                self.device_lat[device.index()] += self.cfg.sc_hit_latency as f64;
                if let Some(o) = first_use_of_prefetch {
                    self.tel.lifecycle_for(
                        EventKind::PrefetchUsed,
                        o,
                        device,
                        block_addr.as_u64(),
                        now,
                    );
                }
            }
            AccessResult::Miss => {
                if let Some(entry) = self.inflight.get_mut(&block_addr.block_number()) {
                    // Merge into the outstanding fill; a speculative fill
                    // becomes a (late) demand fill.
                    if let Some(o) = entry.origin.take() {
                        self.late_prefetches += 1;
                        self.tel.lifecycle_for(
                            EventKind::PrefetchLate,
                            o,
                            device,
                            block_addr.as_u64(),
                            now,
                        );
                    }
                    entry.waiters.push(now, dev_idx);
                    entry.wrote |= access.kind.is_write();
                } else {
                    // A queued-but-unissued prefetch is superseded.
                    self.queue.cancel(block_addr);
                    let now = self.make_room(block_addr, now, buf);
                    self.dram
                        .try_enqueue(block_addr, false, Priority::Demand, now)
                        .expect("room was made");
                    self.inflight.insert(
                        block_addr.block_number(),
                        Inflight {
                            origin: None,
                            waiters: WaiterList::one(access.cycle, dev_idx),
                            wrote: access.kind.is_write(),
                            device: dev_idx,
                        },
                    );
                }
            }
        }

        // Prefetcher: learning on every access, issuing per its own rules.
        // (Learning always runs; the governor only gates the requests.)
        let gated = self.governor_tick();
        scratch.clear();
        self.prefetcher.on_access(access, covered_hit, scratch);
        // Prefetches are attributed to the device whose demand triggered
        // them, regardless of which sub-prefetcher produced the request.
        for req in scratch.iter_mut() {
            req.device = device;
        }
        if gated {
            // Keep one probe in GOVERNOR_PROBE_PERIOD; drop the rest.
            let g = &mut self.governor_state;
            scratch.retain(|_| {
                g.probe += 1;
                if g.probe.is_multiple_of(GOVERNOR_PROBE_PERIOD) {
                    true
                } else {
                    g.suppressed += 1;
                    false
                }
            });
        }
        for req in scratch.drain(..) {
            if self.sc.contains(req.addr)
                || self.inflight.contains_key(&req.addr.block_number())
                || self.queue.contains_block(req.addr)
            {
                self.prefetches_filtered += 1;
                self.tel.lifecycle_for(
                    EventKind::PrefetchFiltered,
                    req.origin,
                    req.device,
                    req.addr.as_u64(),
                    now,
                );
                continue;
            }
            self.queue.push(req);
        }

        // Drain staged prefetches into whatever channel room exists.
        while let Some(req) = self.next_issuable() {
            self.dram.try_enqueue(req.addr, false, Priority::Prefetch, now).expect("room checked");
            self.inflight.insert(
                req.addr.block_number(),
                Inflight {
                    origin: Some(req.origin),
                    waiters: WaiterList::default(),
                    wrote: false,
                    device: req.device.index() as u8,
                },
            );
            self.prefetches_issued += 1;
            self.tel.lifecycle_for(
                EventKind::PrefetchIssued,
                req.origin,
                req.device,
                req.addr.as_u64(),
                now,
            );
        }
        was_hit
    }

    /// Pops the next prefetch that should actually go to DRAM. Entries that
    /// became stale while queued (block filled meanwhile) are discarded;
    /// a full target channel stops draining (FIFO head-of-line — the
    /// speculative stream must not starve any channel of queue slots).
    fn next_issuable(&mut self) -> Option<PrefetchRequest> {
        loop {
            let head = *self.queue.peek()?;
            if self.sc.contains(head.addr) || self.inflight.contains_key(&head.addr.block_number())
            {
                self.queue.pop(); // stale: already present or being fetched
                continue;
            }
            if !self.dram.has_room_for(head.addr) {
                // Head keeps its place (it was only peeked, so the dedup
                // set and FIFO order are untouched).
                return None;
            }
            return self.queue.pop();
        }
    }

    /// Runs a whole trace and finalises the result.
    pub fn run(self, trace: &planaria_trace::Trace) -> SimResult {
        self.run_with_warmup(trace, 0.0)
    }

    /// Runs a trace, discarding metrics accumulated during the leading
    /// `warmup` fraction (`0.0..1.0`) of accesses. Cache contents,
    /// prefetcher state and DRAM protocol state carry over — only the
    /// counters reset — so steady-state behaviour is measured.
    ///
    /// # Panics
    ///
    /// Panics if `warmup` is not within `0.0..1.0`.
    pub fn run_with_warmup(self, trace: &planaria_trace::Trace, warmup: f64) -> SimResult {
        assert!((0.0..1.0).contains(&warmup), "warmup fraction must be in [0, 1)");
        self.run_with_warmup_parts(trace, warmup).0
    }

    /// Like [`MemorySystem::run_with_warmup`], but invokes `observe` with
    /// `(accesses_processed, interim_hit_rate)` every `every` accesses —
    /// the hook the parallel [`crate::runner::Runner`] uses for live
    /// progress reporting. Observation never perturbs the simulation, so
    /// observed and unobserved runs produce identical results.
    ///
    /// # Panics
    ///
    /// Panics if `warmup` is not within `0.0..1.0` or `every` is zero.
    pub fn run_observed(
        self,
        trace: &planaria_trace::Trace,
        warmup: f64,
        every: usize,
        observe: &mut dyn FnMut(usize, f64),
    ) -> SimResult {
        assert!((0.0..1.0).contains(&warmup), "warmup fraction must be in [0, 1)");
        assert!(every > 0, "observation interval must be positive");
        self.run_core(trace, warmup, every, Some(observe)).0
    }

    /// Like [`MemorySystem::run_with_warmup`], but also returns the merged
    /// [`TelemetryReport`] — prefetcher decision events plus system-side
    /// prefetch-lifecycle events, stable-sorted by cycle.
    ///
    /// # Examples
    ///
    /// ```
    /// use planaria_sim::experiment::PrefetcherKind;
    /// use planaria_sim::{EventKind, MemorySystem, SystemConfig, TelemetryConfig};
    /// use planaria_trace::apps::{profile, AppId};
    ///
    /// let trace = profile(AppId::HoK).scaled(5_000).build();
    /// let cfg = SystemConfig { telemetry: TelemetryConfig::events(), ..Default::default() };
    /// let sys = MemorySystem::new(cfg, PrefetcherKind::Planaria.build());
    /// let (result, report) = sys.run_telemetry(&trace, 0.0);
    ///
    /// // Lifecycle counters reconcile with the headline metrics.
    /// assert_eq!(report.count(EventKind::PrefetchIssued), result.traffic.prefetch_reads);
    /// // Full event capture was on, so the decision trace is populated.
    /// assert!(!report.events.is_empty());
    /// ```
    pub fn run_telemetry(
        self,
        trace: &planaria_trace::Trace,
        warmup: f64,
    ) -> (SimResult, TelemetryReport) {
        assert!((0.0..1.0).contains(&warmup), "warmup fraction must be in [0, 1)");
        let (result, _, telemetry) = self.run_core(trace, warmup, usize::MAX, None);
        (result, telemetry)
    }

    /// [`MemorySystem::run_with_warmup`] plus the final DRAM command
    /// counters (tests assert the read stream partitions exactly).
    fn run_with_warmup_parts(
        self,
        trace: &planaria_trace::Trace,
        warmup: f64,
    ) -> (SimResult, planaria_dram::DramStats) {
        let (result, dram, _) = self.run_core(trace, warmup, usize::MAX, None);
        (result, dram)
    }

    pub(crate) fn run_core(
        self,
        trace: &planaria_trace::Trace,
        warmup: f64,
        every: usize,
        observe: Option<&mut dyn FnMut(usize, f64)>,
    ) -> (SimResult, planaria_dram::DramStats, TelemetryReport) {
        // Materialized runs are the streamed loop over a borrowing adapter
        // — one code path, so streamed and materialized runs are identical
        // by construction (and `tests/streaming.rs` pins it).
        self.run_stream_core(&mut trace.stream(), warmup, every, observe)
    }

    /// Runs a stream to exhaustion and finalises the result; the streamed
    /// sibling of [`MemorySystem::run`].
    ///
    /// Memory use is flat in the stream length: the engine holds one
    /// [`STREAM_CHUNK`]-bounded working buffer, never the whole trace.
    ///
    /// # Panics
    ///
    /// Panics if the stream ends with a latched
    /// [`planaria_trace::io::ParseTraceError`] — a truncated replay must
    /// not be reported as a short, successful run.
    ///
    /// # Examples
    ///
    /// ```
    /// use planaria_sim::experiment::PrefetcherKind;
    /// use planaria_sim::{MemorySystem, SystemConfig};
    /// use planaria_trace::apps::{profile, AppId};
    ///
    /// let spec = profile(AppId::HoK).scaled(5_000);
    /// let sys = |k: PrefetcherKind| MemorySystem::new(SystemConfig::default(), k.build());
    ///
    /// let materialized = sys(PrefetcherKind::Planaria).run(&spec.build());
    /// let streamed = sys(PrefetcherKind::Planaria).run_stream(&mut spec.stream());
    /// assert_eq!(streamed, materialized);
    /// ```
    pub fn run_stream(self, stream: &mut dyn AccessStream) -> SimResult {
        self.run_stream_with_warmup(stream, 0.0)
    }

    /// [`MemorySystem::run_stream`] with a leading `warmup` fraction of
    /// accesses excluded from the metrics, like
    /// [`MemorySystem::run_with_warmup`].
    ///
    /// # Panics
    ///
    /// Panics if `warmup` is not within `0.0..1.0`, if `warmup` is
    /// positive and the stream does not know its
    /// [`AccessStream::total_len`] (the boundary would be a guess), or if
    /// the stream ends with a latched error.
    pub fn run_stream_with_warmup(self, stream: &mut dyn AccessStream, warmup: f64) -> SimResult {
        assert!((0.0..1.0).contains(&warmup), "warmup fraction must be in [0, 1)");
        self.run_stream_core(stream, warmup, usize::MAX, None).0
    }

    /// [`MemorySystem::run_observed`] over a stream (the runner's live
    /// progress hook for streamed jobs).
    ///
    /// # Panics
    ///
    /// As [`MemorySystem::run_stream_with_warmup`], plus if `every` is
    /// zero.
    pub fn run_stream_observed(
        self,
        stream: &mut dyn AccessStream,
        warmup: f64,
        every: usize,
        observe: &mut dyn FnMut(usize, f64),
    ) -> SimResult {
        assert!((0.0..1.0).contains(&warmup), "warmup fraction must be in [0, 1)");
        assert!(every > 0, "observation interval must be positive");
        self.run_stream_core(stream, warmup, every, Some(observe)).0
    }

    /// [`MemorySystem::run_telemetry`] over a stream.
    ///
    /// # Panics
    ///
    /// As [`MemorySystem::run_stream_with_warmup`].
    pub fn run_stream_telemetry(
        self,
        stream: &mut dyn AccessStream,
        warmup: f64,
    ) -> (SimResult, TelemetryReport) {
        assert!((0.0..1.0).contains(&warmup), "warmup fraction must be in [0, 1)");
        let (result, _, telemetry) = self.run_stream_core(stream, warmup, usize::MAX, None);
        (result, telemetry)
    }

    pub(crate) fn run_stream_core(
        mut self,
        stream: &mut dyn AccessStream,
        warmup: f64,
        every: usize,
        mut observe: Option<&mut dyn FnMut(usize, f64)>,
    ) -> (SimResult, planaria_dram::DramStats, TelemetryReport) {
        assert!((0.0..1.0).contains(&warmup), "warmup fraction must be in [0, 1)");
        let skip = if warmup > 0.0 {
            let total =
                stream.total_len().expect("warmup fraction needs a stream with a known length");
            (total as f64 * warmup) as usize
        } else {
            0
        };
        let name = stream.name().to_string();
        // Pull in chunks clipped at the warmup boundary and the observation
        // interval — the only two places the loop must stop — so everything
        // in between runs through the batched path.
        let mut done = 0usize;
        let mut chunk = Vec::new();
        loop {
            if done == skip && skip > 0 {
                self.reset_metrics();
            }
            let mut max = STREAM_CHUNK;
            if done < skip {
                max = max.min(skip - done);
            }
            let next_stop = (done / every).saturating_add(1).saturating_mul(every);
            max = max.min(next_stop - done);
            let n = stream.next_chunk(max, &mut chunk);
            if n == 0 {
                break;
            }
            self.process_batch(&chunk);
            done += n;
            if let Some(cb) = observe.as_deref_mut() {
                if done.is_multiple_of(every) {
                    cb(done, self.interim_hit_rate());
                }
            }
        }
        if let Some(e) = stream.error() {
            panic!("trace stream {name:?} failed after {done} accesses: {e}");
        }
        self.finish_parts(&name)
    }

    /// Zeroes every accumulated metric while keeping microarchitectural
    /// state (cache contents, prefetcher tables, DRAM bank state).
    fn reset_metrics(&mut self) {
        self.sc.reset_stats();
        self.dram.reset_stats();
        // Demand waiters from before the boundary must not pay their
        // residual fill latency into the post-boundary `latency_sum` —
        // their arrivals were discarded with `demand_count`, so charging
        // the latency alone would inflate steady-state AMAT. The fills
        // themselves still land correctly: merged demand entries already
        // carry `origin: None` and keep their `wrote` flag.
        for entry in self.inflight.values_mut() {
            entry.waiters.clear();
        }
        self.latency_sum = 0.0;
        self.demand_count = 0;
        self.late_prefetches = 0;
        self.prefetches_issued = 0;
        self.prefetches_filtered = 0;
        self.writebacks_dropped = 0;
        self.device_lat = [0.0; DeviceId::COUNT];
        self.governor_state = GovernorState::default();
        self.first_cycle = None;
        // Telemetry restarts with the other metrics: the system handle
        // resets in place, the prefetcher gets a fresh handle.
        self.tel.reset();
        self.prefetcher.configure_telemetry(&self.cfg.telemetry);
    }

    /// Drains all outstanding work and produces the result record.
    pub fn finish(self, workload: &str) -> SimResult {
        self.finish_parts(workload).0
    }

    pub(crate) fn finish_parts(
        self,
        workload: &str,
    ) -> (SimResult, planaria_dram::DramStats, TelemetryReport) {
        let (result, dram, telemetry, _) = self.finish_parts_logged(workload);
        (result, dram, telemetry)
    }

    /// [`MemorySystem::finish_parts`] plus the completions logged since the
    /// last [`MemorySystem::drain_completion_log`] — including those
    /// retired by the final drain, which the closed-loop traffic model
    /// needs to settle its remaining outstanding requests.
    pub(crate) fn finish_parts_logged(
        mut self,
        workload: &str,
    ) -> (SimResult, planaria_dram::DramStats, TelemetryReport, Vec<(u64, Cycle)>) {
        // Issue whatever prefetches still fit, then let DRAM finish.
        while let Some(req) = self.next_issuable() {
            self.dram
                .try_enqueue(req.addr, false, Priority::Prefetch, self.last_cycle)
                .expect("room checked");
            self.inflight.insert(
                req.addr.block_number(),
                Inflight {
                    origin: Some(req.origin),
                    waiters: WaiterList::default(),
                    wrote: false,
                    device: req.device.index() as u8,
                },
            );
            self.prefetches_issued += 1;
            self.tel.lifecycle_for(
                EventKind::PrefetchIssued,
                req.origin,
                req.device,
                req.addr.as_u64(),
                self.last_cycle,
            );
        }
        let mut buf = std::mem::take(&mut self.completions);
        self.dram.drain(&mut buf);
        for c in buf.drain(..) {
            self.handle_completion(c);
        }
        self.completions = buf;
        let tail_log = self.completion_log.take().unwrap_or_default();

        // Merge prefetcher decision telemetry with the system's lifecycle
        // telemetry: counters add; event streams interleave by cycle (the
        // sort is stable and the simulation single-threaded, so the merged
        // stream is deterministic).
        let mut telemetry = self.prefetcher.telemetry_report().unwrap_or_default();
        let sys_tel = self.tel.report();
        telemetry.counters.absorb(&sys_tel.counters);
        telemetry.events_dropped += sys_tel.events_dropped;
        if !sys_tel.events.is_empty() {
            telemetry.events.extend(sys_tel.events);
            telemetry.events.sort_by_key(|e| e.cycle);
        }

        let cache = *self.sc.stats();
        let dram = self.dram.stats();
        let duration = dram
            .last_finish
            .max(self.last_cycle)
            .since(self.first_cycle.unwrap_or(Cycle::ZERO))
            .max(1);
        // The DRAM channels split `n_rd` by request priority at command
        // execution, so the breakdown is exact even when requests straddle
        // a warmup stats reset (the old derivation subtracted
        // `prefetches_issued`, which counts *enqueues* — a clamped,
        // sometimes double-subtracting approximation).
        debug_assert_eq!(dram.n_rd, dram.n_rd_demand + dram.n_rd_prefetch);
        let demand_reads = dram.n_rd_demand;
        let dram_energy = self.dram.energy_pj(duration);
        let sc_energy = (cache.demand_accesses() + cache.demand_fills + cache.prefetch_fills)
            as f64
            * self.cfg.sc_access_pj;
        let pf_energy = self.prefetcher.table_accesses() as f64 * self.cfg.table_access_pj;
        let total_energy = dram_energy + sc_energy + pf_energy;
        let amat =
            if self.demand_count == 0 { 0.0 } else { self.latency_sum / self.demand_count as f64 };

        let result = SimResult {
            workload: workload.to_string(),
            prefetcher: self.prefetcher.name().to_string(),
            accesses: self.demand_count,
            hit_rate: cache.hit_rate(),
            amat_cycles: amat,
            traffic: TrafficBreakdown {
                demand_reads,
                prefetch_reads: dram.n_rd_prefetch,
                writebacks: dram.n_wr,
            },
            useful_prefetches: cache.useful_prefetches,
            useful_slp: cache.useful_slp,
            useful_tlp: cache.useful_tlp,
            late_prefetches: self.late_prefetches,
            polluting_prefetches: cache.polluting_prefetches,
            prefetch_accuracy: cache.prefetch_accuracy(),
            prefetch_coverage: cache.prefetch_coverage(),
            prefetches_filtered: self.prefetches_filtered,
            writebacks_dropped: self.writebacks_dropped,
            duration_cycles: duration,
            dram_energy_pj: dram_energy,
            sc_energy_pj: sc_energy,
            prefetcher_energy_pj: pf_energy,
            total_energy_pj: total_energy,
            power_mw: total_energy / duration as f64 * self.cfg.clock_hz / 1e9,
            dram_row_hit_rate: dram.row_hit_rate(),
            storage_bits: self.prefetcher.storage_bits(),
            device_stats: {
                let rows = *self.sc.device_stats();
                DeviceId::ALL
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| rows[*i].demand_accesses() > 0)
                    .map(|(i, d)| DeviceStat {
                        device: d.label().to_string(),
                        accesses: rows[i].demand_accesses(),
                        hits: rows[i].demand_hits,
                        amat_cycles: self.device_lat[i] / rows[i].demand_accesses() as f64,
                    })
                    .collect()
            },
        };
        (result, dram, telemetry, tail_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planaria_core::NullPrefetcher;
    use planaria_trace::Trace;

    fn read(addr: u64, cycle: u64) -> MemAccess {
        MemAccess::read(PhysAddr::new(addr), Cycle::new(cycle))
    }

    #[test]
    fn cold_misses_have_memory_latency() {
        let sys = MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new()));
        let trace = Trace::new("t", vec![read(0x0000, 0), read(0x4000, 1000)]);
        let r = sys.run(&trace);
        assert_eq!(r.accesses, 2);
        assert_eq!(r.hit_rate, 0.0);
        // Both misses: AMAT far above the hit latency.
        assert!(r.amat_cycles > 40.0, "amat {}", r.amat_cycles);
        assert_eq!(r.traffic.demand_reads, 2);
        assert_eq!(r.traffic.prefetch_reads, 0);
    }

    #[test]
    fn repeated_block_hits_after_fill() {
        let sys = MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new()));
        // Revisit the same block after the fill completed.
        let trace = Trace::new("t", vec![read(0x0000, 0), read(0x0000, 10_000)]);
        let r = sys.run(&trace);
        assert!((r.hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_in_flight_misses_merge() {
        let sys = MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new()));
        // Second access arrives 1 cycle later: fill not complete -> merge.
        let trace = Trace::new("t", vec![read(0x0000, 0), read(0x0000, 1)]);
        let r = sys.run(&trace);
        assert_eq!(r.traffic.demand_reads, 1, "one DRAM read, two waiters");
        assert_eq!(r.accesses, 2);
    }

    #[test]
    fn merge_storm_spills_past_inline_waiters() {
        // Four demands on one in-flight fill: two waiters fit inline, the
        // rest spill — all four must still be charged residual latency.
        let sys = MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new()));
        let trace = Trace::new("t", vec![read(0, 0), read(0, 1), read(0, 2), read(0, 3)]);
        let r = sys.run(&trace);
        assert_eq!(r.traffic.demand_reads, 1, "one DRAM read, four waiters");
        assert_eq!(r.accesses, 4);
        assert!(r.amat_cycles > 40.0, "all waiters paid memory latency: {}", r.amat_cycles);
    }

    #[test]
    fn writes_cause_writebacks_only_on_dirty_eviction() {
        let cfg = SystemConfig {
            cache: CacheConfig { size_bytes: 512, ways: 2, ..CacheConfig::system_cache() },
            ..SystemConfig::default()
        };
        let sys = MemorySystem::new(cfg, Box::new(NullPrefetcher::new()));
        // Fill set 0 (4 sets of 64B blocks, 2 ways): blocks 0, 4, 8 map to
        // set 0 (block_number % 4). Write block 0, then evict it twice over.
        let trace = Trace::new(
            "t",
            vec![
                MemAccess::write(PhysAddr::new(0), Cycle::new(0)),
                read(4 * 64, 5_000),
                read(8 * 64, 10_000),
                read(12 * 64, 15_000),
            ],
        );
        let r = sys.run(&trace);
        assert_eq!(r.traffic.writebacks, 1, "exactly the dirty line writes back");
    }

    #[test]
    fn null_prefetcher_issues_nothing() {
        let sys = MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new()));
        let accesses: Vec<MemAccess> = (0..100).map(|i| read(i * 64, i * 200)).collect();
        let r = sys.run(&Trace::new("t", accesses));
        assert_eq!(r.traffic.prefetch_reads, 0);
        assert_eq!(r.useful_prefetches, 0);
        assert!(r.power_mw > 0.0);
        assert!(r.duration_cycles > 0);
    }

    #[test]
    fn next_line_converts_stream_misses_into_hits() {
        let mk = |pf: Box<dyn Prefetcher>| {
            let sys = MemorySystem::new(SystemConfig::default(), pf);
            let accesses: Vec<MemAccess> = (0..2000u64).map(|i| read(i * 64, i * 300)).collect();
            sys.run(&Trace::new("stream", accesses))
        };
        let none = mk(Box::new(NullPrefetcher::new()));
        let nl = mk(Box::new(planaria_baselines::NextLine::new()));
        assert!(nl.hit_rate > none.hit_rate + 0.5, "nl {} vs none {}", nl.hit_rate, none.hit_rate);
        assert!(nl.amat_cycles < none.amat_cycles);
        assert!(nl.prefetch_accuracy > 0.9, "accuracy {}", nl.prefetch_accuracy);
    }

    #[test]
    fn governor_gates_inaccurate_prefetchers() {
        // Next-line on uniform random traffic: near-zero accuracy. The
        // governor must slash its traffic; coverage was ~zero anyway.
        let trace = {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(3);
            let accesses: Vec<MemAccess> =
                (0..60_000u64).map(|i| read(rng.gen_range(0..1u64 << 22) * 64, i * 100)).collect();
            Trace::new("rand", accesses)
        };
        let free = MemorySystem::new(
            SystemConfig::default(),
            Box::new(planaria_baselines::NextLine::new()),
        )
        .run(&trace);
        let cfg = SystemConfig {
            governor: Some(GovernorConfig { interval: 2_000, ..GovernorConfig::default() }),
            ..SystemConfig::default()
        };
        let governed =
            MemorySystem::new(cfg, Box::new(planaria_baselines::NextLine::new())).run(&trace);
        assert!(
            governed.traffic.prefetch_reads * 3 < free.traffic.prefetch_reads,
            "governor barely helped: {} vs {}",
            governed.traffic.prefetch_reads,
            free.traffic.prefetch_reads
        );
        assert!(governed.hit_rate >= free.hit_rate - 0.02, "coverage was ~zero anyway");
    }

    #[test]
    fn governor_leaves_accurate_prefetchers_alone() {
        // A sequential stream: next-line accuracy ~1.0; the governor must
        // never gate it.
        let accesses: Vec<MemAccess> = (0..50_000u64).map(|i| read(i * 64, i * 200)).collect();
        let trace = Trace::new("stream", accesses);
        let cfg = SystemConfig {
            governor: Some(GovernorConfig { interval: 2_000, ..GovernorConfig::default() }),
            ..SystemConfig::default()
        };
        let free = MemorySystem::new(
            SystemConfig::default(),
            Box::new(planaria_baselines::NextLine::new()),
        )
        .run(&trace);
        let governed =
            MemorySystem::new(cfg, Box::new(planaria_baselines::NextLine::new())).run(&trace);
        assert!((governed.hit_rate - free.hit_rate).abs() < 0.01);
        assert_eq!(governed.traffic.prefetch_reads, free.traffic.prefetch_reads);
    }

    #[test]
    fn warmup_discards_cold_misses() {
        let accesses: Vec<MemAccess> =
            (0..200u64).map(|i| read((i % 100) * 64, i * 5_000)).collect();
        let trace = Trace::new("w", accesses);
        let cold =
            MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new())).run(&trace);
        let warm = MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new()))
            .run_with_warmup(&trace, 0.5);
        // First half is all cold misses; the measured half is all hits.
        assert!((cold.hit_rate - 0.5).abs() < 1e-9, "cold {}", cold.hit_rate);
        assert!((warm.hit_rate - 1.0).abs() < 1e-9, "warm {}", warm.hit_rate);
        assert_eq!(warm.accesses, 100);
    }

    #[test]
    fn warmup_boundary_does_not_leak_waiter_latency() {
        // Two reads of one block, the second while the fill is still in
        // flight, with the warmup boundary between them. The pre-boundary
        // waiter's residual latency must not be charged to the single
        // post-boundary access: before the fix its ~memory-latency charge
        // landed in `latency_sum` while `demand_count` had been reset,
        // roughly doubling the measured AMAT.
        let trace = Trace::new("t", vec![read(0x0000, 0), read(0x0000, 1)]);
        let cold =
            MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new())).run(&trace);
        let warm = MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new()))
            .run_with_warmup(&trace, 0.5);
        assert_eq!(warm.accesses, 1);
        assert!(
            warm.amat_cycles < 1.5 * cold.amat_cycles,
            "residual warmup latency leaked: warm {} vs cold {}",
            warm.amat_cycles,
            cold.amat_cycles
        );
    }

    #[test]
    fn read_traffic_partitions_exactly() {
        // demand_reads + prefetch_reads must equal the DRAM read-command
        // count exactly — with and without a warmup reset, and with a
        // prefetcher generating speculative traffic that straddles the
        // boundary.
        let accesses: Vec<MemAccess> = (0..5_000u64).map(|i| read(i * 64, i * 120)).collect();
        let trace = Trace::new("stream", accesses);
        for warmup in [0.0, 0.4] {
            let sys = MemorySystem::new(
                SystemConfig::default(),
                Box::new(planaria_baselines::NextLine::new()),
            );
            let (r, dram) = sys.run_with_warmup_parts(&trace, warmup);
            assert_eq!(
                r.traffic.demand_reads + r.traffic.prefetch_reads,
                dram.n_rd,
                "read split must partition n_rd (warmup {warmup})"
            );
            assert!(r.traffic.prefetch_reads > 0, "prefetcher was active");
            assert_eq!(r.traffic.writebacks, dram.n_wr);
        }
    }

    #[test]
    #[should_panic(expected = "warmup fraction")]
    fn warmup_rejects_out_of_range() {
        let sys = MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new()));
        let _ = sys.run_with_warmup(&Trace::empty("e"), 1.5);
    }

    #[test]
    fn empty_trace_is_safe() {
        let sys = MemorySystem::new(SystemConfig::default(), Box::new(NullPrefetcher::new()));
        let r = sys.run(&Trace::empty("empty"));
        assert_eq!(r.accesses, 0);
        assert_eq!(r.amat_cycles, 0.0);
    }
}
