//! The analytic AMAT → IPC model.
//!
//! A trace-driven memory simulator cannot re-execute instructions, so — as
//! documented in DESIGN.md — overall-system IPC is derived from AMAT with a
//! bottleneck model: a fraction `mem_intensity` of each application's
//! execution time scales with AMAT while the rest is compute.
//!
//! ```text
//! time(X) ∝ (1 − mi) + mi · AMAT_X / AMAT_ref
//! IPC(X) / IPC(ref) = time(ref) / time(X) = 1 / (1 − mi + mi·AMAT_X/AMAT_ref)
//! ```
//!
//! The paper's headline pair — AMAT −24.3% yielding IPC +28.9% — pins the
//! targeted apps at `mi ≈ 0.9`, consistent with its premise that the memory
//! wall dominates mobile user experience; per-app values live in
//! [`planaria_trace::apps::AppId::mem_intensity`].

/// Relative IPC of a configuration versus a reference run.
///
/// `amat` and `amat_ref` are in cycles; `mem_intensity` in `[0, 1]`.
/// Returns 1.0 for degenerate inputs (zero reference AMAT).
///
/// # Examples
///
/// ```
/// use planaria_sim::ipc::relative_ipc;
///
/// // 24.3% AMAT reduction at mi = 0.9 gives ≈ +28% IPC.
/// let ipc = relative_ipc(75.7, 100.0, 0.9);
/// assert!(ipc > 1.25 && ipc < 1.33);
/// ```
pub fn relative_ipc(amat: f64, amat_ref: f64, mem_intensity: f64) -> f64 {
    if amat_ref <= 0.0 || amat < 0.0 {
        return 1.0;
    }
    let mi = mem_intensity.clamp(0.0, 1.0);
    let time = (1.0 - mi) + mi * (amat / amat_ref);
    if time <= 0.0 {
        1.0
    } else {
        1.0 / time
    }
}

/// IPC improvement (signed fraction) of a run versus a reference run:
/// `+0.289` means "+28.9% IPC".
pub fn ipc_improvement(amat: f64, amat_ref: f64, mem_intensity: f64) -> f64 {
    relative_ipc(amat, amat_ref, mem_intensity) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_when_amat_unchanged() {
        assert!((relative_ipc(80.0, 80.0, 0.9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_intensity_means_no_sensitivity() {
        assert!((relative_ipc(40.0, 80.0, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_intensity_is_inverse_amat() {
        assert!((relative_ipc(40.0, 80.0, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_headline_pair() {
        // AMAT −24.3% at mi≈0.92 → IPC ≈ +28.8%.
        let imp = ipc_improvement(100.0 * (1.0 - 0.243), 100.0, 0.92);
        assert!((0.24..0.34).contains(&imp), "improvement {imp}");
    }

    #[test]
    fn worse_amat_lowers_ipc() {
        assert!(relative_ipc(120.0, 100.0, 0.9) < 1.0);
    }

    #[test]
    fn degenerate_inputs_return_identity() {
        assert_eq!(relative_ipc(50.0, 0.0, 0.9), 1.0);
        assert_eq!(relative_ipc(-1.0, 100.0, 0.9), 1.0);
    }

    #[test]
    fn intensity_is_clamped() {
        assert_eq!(relative_ipc(50.0, 100.0, 2.0), relative_ipc(50.0, 100.0, 1.0));
    }
}
