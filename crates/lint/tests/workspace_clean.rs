//! The shipped workspace must lint clean against its committed —
//! deliberately empty — baseline. This is the acceptance gate `ci.sh`
//! replays from the command line.

use std::path::Path;

use planaria_lint::report::validate_report;
use planaria_lint::{load_baseline, run_workspace, workspace_config};

fn repo_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn shipped_workspace_is_lint_clean_with_an_empty_baseline() {
    let root = repo_root();
    let baseline = load_baseline(&root.join("lint-baseline.json")).expect("baseline parses");
    assert!(baseline.entries.is_empty(), "the shipped baseline must stay empty");

    let outcome = run_workspace(&root, &baseline).expect("scan succeeds");
    assert!(
        outcome.violations.is_empty(),
        "workspace must be lint-clean:\n{}",
        outcome.render_text()
    );
    assert!(outcome.stale_entries.is_empty());
    assert!(outcome.is_clean());
    assert!(
        outcome.files_scanned > 100,
        "walker should cover the whole workspace, saw {}",
        outcome.files_scanned
    );

    let report = outcome.render("workspace");
    validate_report(&report).expect("report validates against planaria-lint-v2");
}

#[test]
fn streaming_trace_modules_lint_clean_under_the_workspace_config() {
    // The streaming engine additions (pull-based streams, the chunked
    // planaria-trace-v1 codec, and the trace_pack bin) must classify and
    // lint like any other workspace source: R4 only fires on crate roots
    // (none of these are), and R8 accepts their imports because every
    // named crate is a workspace member. A misclassification would
    // silently exempt the new module from the gate, so pin it here.
    use planaria_lint::rules::{lint_source, FileMeta};
    let root = repo_root();
    let config = workspace_config(&root).expect("config builds");
    for rel in [
        "crates/trace/src/stream.rs",
        "crates/trace/src/io.rs",
        "crates/trace/src/bin/trace_pack.rs",
    ] {
        let meta = FileMeta::for_path(rel).expect("streaming sources classify");
        assert!(!meta.is_crate_root, "{rel} must not be treated as a crate root");
        let source = std::fs::read_to_string(root.join(rel)).expect("streaming source readable");
        let vs = lint_source(&meta, &source, &config);
        assert!(vs.is_empty(), "{rel} must lint clean: {vs:?}");
    }
}

#[test]
fn serve_crate_lints_clean_under_the_workspace_config() {
    // planaria-serve multiplexes wall-clock-free device state machines;
    // it is NOT in the nondet allowlist (only the serve_load bench
    // harness is, via crates/bench/), so R2 polices it, R4 demands the
    // crate-root attributes on its lib.rs, and R8 vets its imports. Pin
    // that the shipped sources classify correctly and fire nothing.
    use planaria_lint::rules::{lint_source, FileMeta};
    let root = repo_root();
    let config = workspace_config(&root).expect("config builds");
    assert!(
        !config.nondet_allow.iter().any(|p| p.starts_with("crates/serve")),
        "planaria-serve must stay under the R2 wall-clock ban"
    );
    for rel in [
        "crates/serve/src/lib.rs",
        "crates/serve/src/device.rs",
        "crates/serve/src/service.rs",
        "crates/serve/src/shard.rs",
        "crates/serve/src/snapshot.rs",
    ] {
        let meta = FileMeta::for_path(rel).expect("serve sources classify");
        assert_eq!(meta.is_crate_root, rel.ends_with("lib.rs"), "{rel} crate-root flag");
        let source = std::fs::read_to_string(root.join(rel)).expect("serve source readable");
        let vs = lint_source(&meta, &source, &config);
        assert!(vs.is_empty(), "{rel} must lint clean: {vs:?}");
    }
}

#[test]
fn wall_clock_in_a_serve_path_fires_r2() {
    // Negative control for the test above: the exact violation the serve
    // crate is most likely to grow — measuring a pump turn with
    // Instant::now inside the library instead of through a ShardObserver
    // — must be caught by R2 under the workspace config.
    use planaria_lint::rules::{lint_source, FileMeta};
    let config = workspace_config(&repo_root()).expect("config builds");
    let meta = FileMeta::for_path("crates/serve/src/service.rs").expect("classifies");
    let seeded = "//! Docs.\n\
                  /// Times one pump turn.\n\
                  pub fn timed_pump() -> u128 {\n\
                  \x20   let t0 = std::time::Instant::now();\n\
                  \x20   t0.elapsed().as_nanos()\n\
                  }\n";
    let vs = lint_source(&meta, seeded, &config);
    assert!(
        vs.iter().any(|v| v.rule == "R2" && v.message.contains("Instant::now")),
        "seeded wall-clock read must fire R2, got: {vs:?}"
    );
}

#[test]
fn workspace_config_learns_member_crate_idents() {
    let config = workspace_config(&repo_root()).expect("config builds");
    for ident in ["planaria_common", "planaria_hash", "planaria_lint", "serde", "rand"] {
        assert!(
            config.crate_idents.iter().any(|c| c == ident),
            "missing {ident} in {:?}",
            config.crate_idents
        );
    }
}
