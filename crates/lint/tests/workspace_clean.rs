//! The shipped workspace must lint clean against its committed —
//! deliberately empty — baseline. This is the acceptance gate `ci.sh`
//! replays from the command line.

use std::path::Path;

use planaria_lint::report::validate_report;
use planaria_lint::{load_baseline, run_workspace, workspace_config};

fn repo_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn shipped_workspace_is_lint_clean_with_an_empty_baseline() {
    let root = repo_root();
    let baseline = load_baseline(&root.join("lint-baseline.json")).expect("baseline parses");
    assert!(baseline.entries.is_empty(), "the shipped baseline must stay empty");

    let outcome = run_workspace(&root, &baseline).expect("scan succeeds");
    assert!(
        outcome.violations.is_empty(),
        "workspace must be lint-clean:\n{}",
        outcome.render_text()
    );
    assert!(outcome.stale_entries.is_empty());
    assert!(outcome.is_clean());
    assert!(
        outcome.files_scanned > 100,
        "walker should cover the whole workspace, saw {}",
        outcome.files_scanned
    );

    let report = outcome.render("workspace");
    validate_report(&report).expect("report validates against planaria-lint-v1");
}

#[test]
fn workspace_config_learns_member_crate_idents() {
    let config = workspace_config(&repo_root()).expect("config builds");
    for ident in ["planaria_common", "planaria_hash", "planaria_lint", "serde", "rand"] {
        assert!(
            config.crate_idents.iter().any(|c| c == ident),
            "missing {ident} in {:?}",
            config.crate_idents
        );
    }
}
