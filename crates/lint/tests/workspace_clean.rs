//! The shipped workspace must lint clean against its committed —
//! deliberately empty — baseline. This is the acceptance gate `ci.sh`
//! replays from the command line.

use std::path::Path;

use planaria_lint::report::validate_report;
use planaria_lint::{load_baseline, run_workspace, workspace_config};

fn repo_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn shipped_workspace_is_lint_clean_with_an_empty_baseline() {
    let root = repo_root();
    let baseline = load_baseline(&root.join("lint-baseline.json")).expect("baseline parses");
    assert!(baseline.entries.is_empty(), "the shipped baseline must stay empty");

    let outcome = run_workspace(&root, &baseline).expect("scan succeeds");
    assert!(
        outcome.violations.is_empty(),
        "workspace must be lint-clean:\n{}",
        outcome.render_text()
    );
    assert!(outcome.stale_entries.is_empty());
    assert!(outcome.is_clean());
    assert!(
        outcome.files_scanned > 100,
        "walker should cover the whole workspace, saw {}",
        outcome.files_scanned
    );

    let report = outcome.render("workspace");
    validate_report(&report).expect("report validates against planaria-lint-v1");
}

#[test]
fn streaming_trace_modules_lint_clean_under_the_workspace_config() {
    // The streaming engine additions (pull-based streams, the chunked
    // planaria-trace-v1 codec, and the trace_pack bin) must classify and
    // lint like any other workspace source: R4 only fires on crate roots
    // (none of these are), and R8 accepts their imports because every
    // named crate is a workspace member. A misclassification would
    // silently exempt the new module from the gate, so pin it here.
    use planaria_lint::rules::{lint_source, FileMeta};
    let root = repo_root();
    let config = workspace_config(&root).expect("config builds");
    for rel in [
        "crates/trace/src/stream.rs",
        "crates/trace/src/io.rs",
        "crates/trace/src/bin/trace_pack.rs",
    ] {
        let meta = FileMeta::for_path(rel).expect("streaming sources classify");
        assert!(!meta.is_crate_root, "{rel} must not be treated as a crate root");
        let source = std::fs::read_to_string(root.join(rel)).expect("streaming source readable");
        let vs = lint_source(&meta, &source, &config);
        assert!(vs.is_empty(), "{rel} must lint clean: {vs:?}");
    }
}

#[test]
fn workspace_config_learns_member_crate_idents() {
    let config = workspace_config(&repo_root()).expect("config builds");
    for ident in ["planaria_common", "planaria_hash", "planaria_lint", "serde", "rand"] {
        assert!(
            config.crate_idents.iter().any(|c| c == ident),
            "missing {ident} in {:?}",
            config.crate_idents
        );
    }
}
