//! Per-rule fixture tests: every bad fixture trips exactly its own rule,
//! the clean fixtures trip nothing, and trigger text hidden in strings
//! or comments stays invisible.

use planaria_lint::rules::{lint_manifest, lint_source, Config, FileMeta, Violation};

fn config() -> Config {
    Config {
        crate_idents: ["planaria_common", "planaria_hash", "planaria_core"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ..Config::default()
    }
}

fn lint(path: &str, source: &str) -> Vec<Violation> {
    let meta = FileMeta::for_path(path).expect("classifiable fixture path");
    lint_source(&meta, source, &config())
}

/// Distinct rule ids fired, in order.
fn rules_fired(path: &str, source: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint(path, source).into_iter().map(|v| v.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn r1_default_hasher_map_in_hot_crate() {
    let vs = lint("crates/core/src/fixture.rs", include_str!("fixtures/bad_r1.rs"));
    assert!(vs.iter().all(|v| v.rule == "R1"), "{vs:?}");
    assert_eq!(vs.len(), 3, "one per HashMap mention: {vs:?}");
}

#[test]
fn r1_is_silent_outside_hot_crates() {
    let vs = lint("crates/telemetry/src/fixture.rs", include_str!("fixtures/bad_r1.rs"));
    assert!(vs.is_empty(), "telemetry is not a hot crate: {vs:?}");
}

#[test]
fn r2_wall_clock_in_simulated_code() {
    assert_eq!(
        rules_fired("crates/core/src/fixture.rs", include_str!("fixtures/bad_r2.rs")),
        ["R2"]
    );
}

#[test]
fn r2_is_silent_on_the_allowlist() {
    let vs = lint("crates/bench/src/fixture.rs", include_str!("fixtures/bad_r2.rs"));
    assert!(vs.is_empty(), "bench may time things: {vs:?}");
}

#[test]
fn r3_bare_unwrap_in_library_code() {
    assert_eq!(
        rules_fired("crates/core/src/fixture.rs", include_str!("fixtures/bad_r3.rs")),
        ["R3"]
    );
}

#[test]
fn r4_crate_root_missing_lint_attrs() {
    let vs = lint("crates/demo/src/lib.rs", include_str!("fixtures/bad_r4.rs"));
    assert!(vs.iter().all(|v| v.rule == "R4"), "{vs:?}");
    assert_eq!(vs.len(), 2, "one per missing attribute: {vs:?}");
}

#[test]
fn r4_only_applies_to_crate_roots() {
    let vs = lint("crates/demo/src/other.rs", include_str!("fixtures/bad_r4.rs"));
    assert!(vs.is_empty(), "non-root modules need no crate attrs: {vs:?}");
}

#[test]
fn r5_float_sum_over_map_iteration() {
    let vs = lint("crates/analysis/src/fixture.rs", include_str!("fixtures/bad_r5.rs"));
    assert!(vs.iter().all(|v| v.rule == "R5"), "{vs:?}");
    assert_eq!(vs.len(), 2, "turbofish sum and float fold: {vs:?}");
}

#[test]
fn r6_handrolled_json_outside_shared_module() {
    let vs = lint("crates/telemetry/src/fixture.rs", include_str!("fixtures/bad_r6.rs"));
    assert!(vs.iter().all(|v| v.rule == "R6"), "{vs:?}");
    assert_eq!(vs.len(), 2, "escape helper and rogue schema emitter: {vs:?}");
}

#[test]
fn r7_stub_macros() {
    let vs = lint("crates/common/src/fixture.rs", include_str!("fixtures/bad_r7.rs"));
    assert!(vs.iter().all(|v| v.rule == "R7"), "{vs:?}");
    assert_eq!(vs.len(), 3, "todo, dbg and unimplemented: {vs:?}");
}

#[test]
fn r8_unknown_crate_import() {
    assert_eq!(
        rules_fired("crates/core/src/fixture.rs", include_str!("fixtures/bad_r8.rs")),
        ["R8"]
    );
}

#[test]
fn clean_fixture_passes_every_rule_as_a_hot_crate_root() {
    let vs = lint("crates/core/src/lib.rs", include_str!("fixtures/clean.rs"));
    assert!(vs.is_empty(), "sanctioned forms must not fire: {vs:?}");
}

#[test]
fn tricky_strings_and_comments_never_fire() {
    let vs = lint("crates/core/src/fixture.rs", include_str!("fixtures/tricky.rs"));
    assert!(vs.is_empty(), "triggers in strings/comments are data: {vs:?}");
}

#[test]
fn bad_manifest_fires_r8_per_registry_dependency() {
    let vs = lint_manifest("crates/rogue/Cargo.toml", include_str!("fixtures/bad_manifest.toml"));
    assert!(vs.iter().all(|v| v.rule == "R8"), "{vs:?}");
    assert_eq!(vs.len(), 3, "rayon, reqwest table, quickcheck git: {vs:?}");
}

#[test]
fn clean_manifest_is_silent() {
    let vs = lint_manifest("crates/tidy/Cargo.toml", include_str!("fixtures/clean_manifest.toml"));
    assert!(vs.is_empty(), "workspace/path deps are sanctioned: {vs:?}");
}
