//! Per-rule fixture tests: every bad fixture trips exactly its own rule,
//! the clean fixtures trip nothing, and trigger text hidden in strings
//! or comments stays invisible.

use planaria_lint::rules::{lint_manifest, lint_source, Config, FileMeta, Violation};

fn config() -> Config {
    Config {
        crate_idents: ["planaria_common", "planaria_hash", "planaria_core"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ..Config::default()
    }
}

fn lint(path: &str, source: &str) -> Vec<Violation> {
    let meta = FileMeta::for_path(path).expect("classifiable fixture path");
    lint_source(&meta, source, &config())
}

/// Distinct rule ids fired, in order.
fn rules_fired(path: &str, source: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint(path, source).into_iter().map(|v| v.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn r1_default_hasher_map_in_hot_crate() {
    let vs = lint("crates/core/src/fixture.rs", include_str!("fixtures/bad_r1.rs"));
    assert!(vs.iter().all(|v| v.rule == "R1"), "{vs:?}");
    assert_eq!(vs.len(), 3, "one per HashMap mention: {vs:?}");
}

#[test]
fn r1_is_silent_outside_hot_crates() {
    let vs = lint("crates/telemetry/src/fixture.rs", include_str!("fixtures/bad_r1.rs"));
    assert!(vs.is_empty(), "telemetry is not a hot crate: {vs:?}");
}

#[test]
fn r2_wall_clock_in_simulated_code() {
    assert_eq!(
        rules_fired("crates/core/src/fixture.rs", include_str!("fixtures/bad_r2.rs")),
        ["R2"]
    );
}

#[test]
fn r2_is_silent_on_the_allowlist() {
    let vs = lint("crates/bench/src/fixture.rs", include_str!("fixtures/bad_r2.rs"));
    assert!(vs.is_empty(), "bench may time things: {vs:?}");
}

#[test]
fn r3_bare_unwrap_in_library_code() {
    assert_eq!(
        rules_fired("crates/core/src/fixture.rs", include_str!("fixtures/bad_r3.rs")),
        ["R3"]
    );
}

#[test]
fn r4_crate_root_missing_lint_attrs() {
    let vs = lint("crates/demo/src/lib.rs", include_str!("fixtures/bad_r4.rs"));
    assert!(vs.iter().all(|v| v.rule == "R4"), "{vs:?}");
    assert_eq!(vs.len(), 2, "one per missing attribute: {vs:?}");
}

#[test]
fn r4_only_applies_to_crate_roots() {
    let vs = lint("crates/demo/src/other.rs", include_str!("fixtures/bad_r4.rs"));
    assert!(vs.is_empty(), "non-root modules need no crate attrs: {vs:?}");
}

#[test]
fn r5_float_sum_over_map_iteration() {
    let vs = lint("crates/analysis/src/fixture.rs", include_str!("fixtures/bad_r5.rs"));
    assert!(vs.iter().all(|v| v.rule == "R5"), "{vs:?}");
    assert_eq!(vs.len(), 2, "turbofish sum and float fold: {vs:?}");
}

#[test]
fn r6_handrolled_json_outside_shared_module() {
    let vs = lint("crates/telemetry/src/fixture.rs", include_str!("fixtures/bad_r6.rs"));
    assert!(vs.iter().all(|v| v.rule == "R6"), "{vs:?}");
    assert_eq!(vs.len(), 2, "escape helper and rogue schema emitter: {vs:?}");
}

#[test]
fn r7_stub_macros() {
    let vs = lint("crates/common/src/fixture.rs", include_str!("fixtures/bad_r7.rs"));
    assert!(vs.iter().all(|v| v.rule == "R7"), "{vs:?}");
    assert_eq!(vs.len(), 3, "todo, dbg and unimplemented: {vs:?}");
}

#[test]
fn r8_unknown_crate_import() {
    assert_eq!(
        rules_fired("crates/core/src/fixture.rs", include_str!("fixtures/bad_r8.rs")),
        ["R8"]
    );
}

#[test]
fn r9_transitive_wall_clock_within_one_file() {
    let vs = lint("crates/core/src/fixture.rs", include_str!("fixtures/bad_r9.rs"));
    let direct: Vec<_> = vs.iter().filter(|v| v.rule == "R2").collect();
    let indirect: Vec<_> = vs.iter().filter(|v| v.rule == "R9").collect();
    assert_eq!(direct.len(), 1, "{vs:?}");
    assert_eq!(indirect.len(), 1, "only `entry` is indirectly tainted: {vs:?}");
    assert!(indirect[0].message.contains("entry"), "{:?}", indirect[0].message);
    assert!(indirect[0].message.contains("transitively"), "{:?}", indirect[0].message);
}

#[test]
fn r9_is_silent_on_the_allowlist() {
    let vs = lint("crates/bench/src/fixture.rs", include_str!("fixtures/bad_r9.rs"));
    assert!(vs.is_empty(), "bench may time things, directly or not: {vs:?}");
}

#[test]
fn r9_taints_across_files_and_crates() {
    use planaria_lint::{lint_files, SourceFile};
    let source = |path: &str, text: &str| SourceFile {
        meta: FileMeta::for_path(path).expect("classifiable fixture path"),
        text: text.to_string(),
    };
    let clock = source(
        "crates/trace/src/clock.rs",
        "//! Clock.\n\n/// Direct wall-clock read (R2).\npub fn read_clock() -> u64 {\n    \
         let _ = std::time::SystemTime::now();\n    0\n}\n",
    );
    let driver = source(
        "crates/core/src/driver.rs",
        "//! Driver.\n\n/// Reaches the clock only through another crate.\n\
         pub fn drive() -> u64 {\n    planaria_trace::clock::read_clock()\n}\n",
    );
    let run = lint_files(&[clock, driver], &config());
    let r9: Vec<_> = run.violations.iter().filter(|v| v.rule == "R9").collect();
    assert_eq!(r9.len(), 1, "{:?}", run.violations);
    assert_eq!(r9[0].file, "crates/core/src/driver.rs");
    assert!(r9[0].message.contains("drive"), "{:?}", r9[0].message);
    assert!(run.violations.iter().any(|v| v.rule == "R2"), "direct site still R2");
    assert!(run.functions >= 2 && run.call_edges >= 1, "graph was built");
}

#[test]
fn r10_map_iteration_into_ordered_sink() {
    let vs = lint("crates/analysis/src/fixture.rs", include_str!("fixtures/bad_r10.rs"));
    assert!(vs.iter().all(|v| v.rule == "R10"), "{vs:?}");
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert!(vs[0].message.contains("by_page"), "{:?}", vs[0].message);
}

#[test]
fn r11_narrowing_cast_in_parsing_module() {
    let vs = lint("crates/trace/src/io.rs", include_str!("fixtures/bad_r11.rs"));
    assert!(vs.iter().all(|v| v.rule == "R11"), "{vs:?}");
    assert_eq!(vs.len(), 1, "the widening `as u64` must not fire: {vs:?}");
}

#[test]
fn r11_is_silent_outside_parsing_modules() {
    let vs = lint("crates/analysis/src/fixture.rs", include_str!("fixtures/bad_r11.rs"));
    assert!(vs.is_empty(), "R11 only polices configured parsing paths: {vs:?}");
}

#[test]
fn r12_checks_depend_on_the_crate() {
    // In serve: the unbounded channel and the `Rc` fire; serve is not a
    // hot crate, so the Mutex passes.
    let vs = lint("crates/serve/src/fixture.rs", include_str!("fixtures/bad_r12.rs"));
    assert!(vs.iter().all(|v| v.rule == "R12"), "{vs:?}");
    assert_eq!(vs.len(), 3, "channel + two Rc mentions: {vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("unbounded channel")), "{vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("!Send")), "{vs:?}");

    // In core (hot): the channel and the Mutex fire; core holds no Send
    // device state, so the Rc passes.
    let vs = lint("crates/core/src/fixture.rs", include_str!("fixtures/bad_r12.rs"));
    assert!(vs.iter().all(|v| v.rule == "R12"), "{vs:?}");
    assert_eq!(vs.len(), 3, "channel + two Mutex mentions: {vs:?}");
    assert!(vs.iter().any(|v| v.message.contains("hot-path")), "{vs:?}");

    // In the lock allowlist (sim's runner): only the channel fires.
    let vs = lint("crates/sim/src/runner.rs", include_str!("fixtures/bad_r12.rs"));
    assert!(vs.iter().all(|v| v.rule == "R12"), "{vs:?}");
    assert_eq!(vs.len(), 1, "lock_allow excuses the Mutex: {vs:?}");
}

#[test]
fn clean_flow_fixture_passes_the_flow_rules_where_they_all_apply() {
    // `crates/trace/src/io.rs` is a hot crate AND a narrow-cast path, so
    // every flow rule is live against this fixture.
    let vs = lint("crates/trace/src/io.rs", include_str!("fixtures/clean_flow.rs"));
    assert!(vs.is_empty(), "sanctioned flow forms must not fire: {vs:?}");
}

#[test]
fn structural_parser_handles_tricky_shapes() {
    use planaria_lint::syntax::ItemTree;
    let tree = ItemTree::parse_source(include_str!("fixtures/tricky_structure.rs"));
    let fns = tree.fns();
    let names: Vec<&str> = fns.iter().map(|f| f.item.name.as_str()).collect();
    assert!(names.contains(&"outer"), "{names:?}");
    assert!(names.contains(&"inner"), "impl-in-fn / fn-in-fn bodies are parsed: {names:?}");
    assert!(names.contains(&"match"), "raw idents lex to their bare name: {names:?}");
    let find = |name: &str| fns.iter().find(|f| f.item.name == name).expect("fn present");
    assert!(find("helper").item.cfg_test, "doubly-nested cfg(test) is test code");
    assert!(find("works").item.cfg_test, "#[test] fns are test code");
    assert!(!find("outer").item.cfg_test);
    assert!(!find("inner").item.cfg_test);
}

#[test]
fn clean_fixture_passes_every_rule_as_a_hot_crate_root() {
    let vs = lint("crates/core/src/lib.rs", include_str!("fixtures/clean.rs"));
    assert!(vs.is_empty(), "sanctioned forms must not fire: {vs:?}");
}

#[test]
fn tricky_strings_and_comments_never_fire() {
    let vs = lint("crates/core/src/fixture.rs", include_str!("fixtures/tricky.rs"));
    assert!(vs.is_empty(), "triggers in strings/comments are data: {vs:?}");
}

#[test]
fn bad_manifest_fires_r8_per_registry_dependency() {
    let vs = lint_manifest("crates/rogue/Cargo.toml", include_str!("fixtures/bad_manifest.toml"));
    assert!(vs.iter().all(|v| v.rule == "R8"), "{vs:?}");
    assert_eq!(vs.len(), 3, "rayon, reqwest table, quickcheck git: {vs:?}");
}

#[test]
fn clean_manifest_is_silent() {
    let vs = lint_manifest("crates/tidy/Cargo.toml", include_str!("fixtures/clean_manifest.toml"));
    assert!(vs.is_empty(), "workspace/path deps are sanctioned: {vs:?}");
}
