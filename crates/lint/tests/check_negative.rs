//! Negative-path tests on a synthetic mini-workspace: a seeded violation
//! must dirty the outcome, a baseline entry with a justification must
//! suppress it, and entries that match nothing must be flagged stale.

use std::fs;
use std::path::{Path, PathBuf};

use planaria_lint::baseline::{Baseline, BASELINE_SCHEMA};
use planaria_lint::run_workspace;

/// Builds `<tmp>/<name>` containing a one-crate workspace whose lib.rs
/// has both crate-root attributes plus one seeded R7 violation.
fn mini_workspace(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("reset tmp workspace");
    }
    fs::create_dir_all(root.join("crates/demo/src")).expect("mkdir");
    fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/demo\"]\n")
        .expect("root manifest");
    fs::write(
        root.join("crates/demo/Cargo.toml"),
        "[package]\nname = \"demo\"\nversion = \"0.1.0\"\nedition = \"2021\"\n",
    )
    .expect("member manifest");
    fs::write(
        root.join("crates/demo/src/lib.rs"),
        "//! Demo crate.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n\n\
         /// Unfinished.\npub fn stub() {\n    todo!()\n}\n",
    )
    .expect("seeded source");
    root
}

fn baseline(entries_json: &str) -> Baseline {
    let text = format!("{{\"schema\": \"{BASELINE_SCHEMA}\", \"entries\": [{entries_json}]}}");
    Baseline::parse(&text).expect("baseline parses")
}

#[test]
fn seeded_violation_dirties_the_outcome() {
    let root = mini_workspace("lint_negative_dirty");
    let outcome = run_workspace(&root, &Baseline::default()).expect("scan succeeds");
    assert!(!outcome.is_clean());
    assert_eq!(outcome.violations.len(), 1, "{:?}", outcome.violations);
    assert_eq!(outcome.violations[0].rule, "R7");
    assert_eq!(outcome.violations[0].file, "crates/demo/src/lib.rs");
    assert_eq!(outcome.files_scanned, 3, "root manifest, member manifest, lib.rs");
}

#[test]
fn justified_baseline_entry_suppresses_the_violation() {
    let root = mini_workspace("lint_negative_suppressed");
    let b = baseline(
        "{\"rule\": \"R7\", \"file\": \"crates/demo/src/lib.rs\", \"pattern\": \"todo\", \
         \"justification\": \"demo stub, tracked in ROADMAP\"}",
    );
    let outcome = run_workspace(&root, &b).expect("scan succeeds");
    assert!(outcome.is_clean(), "{:?}", outcome.violations);
    assert!(outcome.violations.is_empty());
    assert_eq!(outcome.suppressed.len(), 1);
    assert!(outcome.stale_entries.is_empty());
}

#[test]
fn non_matching_baseline_entry_is_stale_and_fails_check() {
    let root = mini_workspace("lint_negative_stale");
    let b = baseline(
        "{\"rule\": \"R3\", \"file\": \"crates/demo/src/gone.rs\", \"pattern\": \"unwrap\", \
         \"justification\": \"site was deleted long ago\"}",
    );
    let outcome = run_workspace(&root, &b).expect("scan succeeds");
    assert_eq!(outcome.stale_entries.len(), 1);
    assert!(!outcome.is_clean(), "stale entries must fail --check");
}
