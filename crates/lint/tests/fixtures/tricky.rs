//! Fixture: rule triggers hidden where only a text grep would find them
//! — comments, doc text, strings, raw strings, lifetimes. Lints clean.
//!
//! A doc comment mentioning `HashMap::new().unwrap()` or `todo!()` is
//! documentation, not code.

/* Block comment: Instant::now(); SystemTime::now(); thread_rng();
   /* nested block comment: use rayon::prelude::*; dbg!(0) */
   still inside the outer comment: HashSet::default().unwrap() */

/// String contents are data: the lexer must not see these as tokens.
pub const POEM: &str = "HashMap::new().unwrap(); todo!(); std::env::args()";

/// Raw strings may hold schema-looking JSON without firing the shared-
/// json rule (the literal is a document, not a `planaria-*-v1` id).
pub const RAW: &str = r#"{"schema": "planaria-tricky-v1", "x": "unwrap()"}"#;

/// An escaped quote must not terminate the literal early.
pub const ESCAPED: &str = "she said \"use rayon::prelude::*\" and left";

/// Lifetimes are not char literals: `'a` must not swallow the rest.
pub fn first<'a>(xs: &'a [u8]) -> Option<&'a u8> {
    xs.first()
}

/// A char literal holding a quote, next to a range (not a float).
pub fn count(xs: &[char]) -> usize {
    (0..xs.len()).filter(|&i| xs[i] == '"').count()
}
