//! Fixture: a crate root using the sanctioned counterpart of every rule
//! — lints completely clean even under the hot-crate rule set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use planaria_common::json;
use planaria_hash::FastHashMap;

/// Schema id, emitted through the shared json helpers below (R6-clean).
pub const SCHEMA: &str = "planaria-demo-v1";

/// Deterministic hashing (R1-clean) and order-independent float
/// accumulation: keys are sorted before summing (R5-clean).
pub fn total(map: &FastHashMap<u32, f64>) -> f64 {
    let mut keys: Vec<u32> = map.keys().copied().collect();
    keys.sort_unstable();
    keys.iter().map(|k| *map.get(k).expect("key came from this map")).sum::<f64>()
}

/// `expect` with an invariant message is the sanctioned form (R3-clean).
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().expect("caller guarantees a non-empty slice")
}

/// Escaping goes through the shared helper (R6-clean).
pub fn label(s: &str) -> String {
    json::escape(s)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    // Tests may use std maps, wall clocks and unwrap freely.
    #[test]
    fn std_map_is_fine_here() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        let _t = std::time::Instant::now();
    }
}
