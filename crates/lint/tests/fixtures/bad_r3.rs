//! Fixture: bare `.unwrap()` in library code (fires only R3).

/// Panics with no explanation of the violated invariant.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
