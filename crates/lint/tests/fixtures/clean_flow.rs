//! Clean-flow fixture: the sanctioned counterparts of rules R9–R12.
//! Linted under `crates/trace/src/io.rs`, so the narrowing-cast and
//! hot-crate checks are all live.

use std::collections::BTreeMap;

use planaria_hash::FastHashMap;

/// No call path from here reaches a wall clock (R9 clean).
pub fn pure_step(x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Ordered iteration: a `BTreeMap`, not a hash map (R10 clean).
pub fn ordered_values(tree: &BTreeMap<u64, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (_k, v) in tree {
        out.push(*v);
    }
    out
}

/// Hash-map contents are sorted before the ordered sink (R10 clean).
pub fn sorted_pages(by_page: &FastHashMap<u64, u64>) -> Vec<u64> {
    let mut pages: Vec<u64> = by_page.keys().copied().collect();
    pages.sort_unstable();
    pages
}

/// Checked narrowing with a surfaced error (R11 clean).
pub fn checked_len(count: u64) -> Result<usize, String> {
    usize::try_from(count).map_err(|_| format!("count {count} exceeds usize"))
}

/// Bounded channel sized like the serve mailbox (R12 clean).
pub fn bounded() -> std::sync::mpsc::Receiver<u64> {
    let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(64);
    drop(tx);
    rx
}
