//! Fixture: hand-rolled JSON plumbing outside the shared module (fires
//! only R6 — both halves: a local escape helper and a schema emitter
//! that never references the shared helpers).

/// Duplicates `planaria_common::json::escape`.
pub fn escape_json(s: &str) -> String {
    s.replace('"', "\\\"")
}

/// Schema id emitted without going through the shared writer.
pub const SCHEMA: &str = "planaria-rogue-v1";
