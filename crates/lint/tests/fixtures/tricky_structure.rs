//! Structural-parser regressions: nested `cfg(test)` modules, items
//! declared inside function bodies, and raw-identifier functions.

/// Outer function with a nested item: the nested body must be a "hole"
/// in the outer function's scan range.
pub fn outer() -> u32 {
    fn inner() -> u32 {
        9
    }
    inner()
}

/// Raw identifier: lexes as the bare name `match`.
pub fn r#match(r#type: u32) -> u32 {
    r#type
}

#[cfg(test)]
mod tests {
    #[cfg(test)]
    mod nested {
        /// Doubly test-gated.
        pub fn helper() {}
    }

    #[test]
    fn works() {
        assert_eq!(super::outer(), 9);
    }
}
