//! R11 fixture: a narrowing `as` cast on an externally declared length.

/// Truncates on 32-bit targets instead of failing.
pub fn declared_len(count: u64) -> usize {
    count as usize
}

/// Widening cast: `u32 → u64` cannot lose bits, so R11 stays silent.
pub fn widen(v: u32) -> u64 {
    v as u64
}
