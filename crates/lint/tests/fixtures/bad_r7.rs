//! Fixture: leftover stub/debug macros (fires only R7, three times).

/// Unfinished branch.
pub fn later() {
    todo!()
}

/// Debug print left behind.
pub fn noisy(x: u32) -> u32 {
    dbg!(x)
}

/// Explicitly unimplemented arm.
pub fn never() {
    unimplemented!()
}
