//! Fixture: import of a crate that is neither a workspace member nor
//! vendored (fires only R8 — the build environment cannot fetch it).

use rayon::prelude::*;

/// Would parallelize, if the dependency existed.
pub fn noop() {}
