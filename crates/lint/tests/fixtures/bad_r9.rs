//! R9 fixture: `entry` never names a clock, but reaches one through
//! `stamp`. The token scan (R2) sees only `stamp`; the call-graph pass
//! must taint `entry` too.

use std::time::Instant;

/// Direct wall-clock read — this site belongs to R2, not R9.
pub fn stamp() -> Instant {
    Instant::now()
}

/// Calls `stamp` and is therefore transitively wall-clock tainted.
pub fn entry() -> Instant {
    stamp()
}
