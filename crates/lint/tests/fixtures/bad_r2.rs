//! Fixture: wall-clock read inside simulated code (fires only R2).

use std::time::Instant;

/// Reads the host clock — results now depend on machine speed.
pub fn stamp() -> u128 {
    Instant::now().elapsed().as_nanos()
}
