//! R10 fixture: a loop over hash-map iteration feeding an ordered sink
//! without an intervening sort.

use std::collections::HashMap;

/// Emits pages in hasher order — the output depends on the seed.
pub fn label_order(by_page: &HashMap<u64, u32>) -> Vec<u64> {
    let mut out = Vec::new();
    for page in by_page.keys() {
        out.push(*page);
    }
    out
}
