//! Fixture: default-hasher map in a hot-path crate (fires only R1).

use std::collections::HashMap;

/// Seeded SipHash map — iteration order varies per process.
pub fn build() -> HashMap<u64, u64> {
    HashMap::new()
}
