//! Fixture: a crate root missing both mandatory crate-level lint
//! attributes (fires only R4, twice).

/// Documented so `missing_docs` itself would stay quiet.
pub fn noop() {}
