//! Fixture: float accumulation in hash-map iteration order (fires only
//! R5 — the file lives in a non-hot crate so `HashMap` itself is legal).

use std::collections::HashMap;

/// Sum depends on iteration order: float addition is not associative.
pub fn total(map: &HashMap<u32, f64>) -> f64 {
    map.values().sum::<f64>()
}

/// Same defect through a fold seeded with a float literal.
pub fn folded(map: &HashMap<u32, f64>) -> f64 {
    map.values().fold(0.0, |a, v| a + v)
}
