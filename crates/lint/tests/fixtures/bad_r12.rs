//! R12 fixture: unbounded channel, `!Send` device state, and a hot-path
//! lock. Which checks fire depends on the crate the file lands in.

/// Queues work with no backpressure (fires in every first-party crate).
pub fn queue() -> std::sync::mpsc::Receiver<u64> {
    let (tx, rx) = std::sync::mpsc::channel();
    drop(tx);
    rx
}

/// Shares state without `Send` (fires in serve, the Send-state crate).
pub fn shared() -> std::rc::Rc<u32> {
    std::rc::Rc::new(7)
}

/// Serializes access behind a lock (fires in hot crates).
pub fn guarded() -> std::sync::Mutex<u32> {
    std::sync::Mutex::new(0)
}
