//! The rule set: what each invariant is, and how it is detected.
//!
//! Every rule works on the token stream produced by [`crate::lexer`], so
//! rule-triggering text inside comments, doc comments and string literals
//! never false-positives. Rules that only make sense outside test code
//! (R1, R2, R3, R5) additionally skip `#[cfg(test)]`-gated regions and
//! test files (`tests/`, `benches/`) — tests may use std maps, wall
//! clocks and `unwrap()` freely.

use crate::lexer::{lex, Token, TokenKind};

/// Where a scanned file lives in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// `crates/<name>/…` — first-party simulator code.
    FirstParty,
    /// `vendor/<name>/…` — vendored offline dependency stand-ins.
    Vendor,
    /// Top-level `tests/…` — cross-crate integration tests.
    TopTests,
    /// Top-level `examples/…` — user-facing example programs.
    Examples,
}

/// Everything the rules need to know about a file besides its tokens.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Owning crate directory name (`core`, `planaria-hash`, …), or the
    /// top-level directory name for `tests/` / `examples/` files.
    pub crate_name: String,
    /// Which part of the workspace the file belongs to.
    pub origin: Origin,
    /// True for files under any `tests/` or `benches/` directory.
    pub is_test_file: bool,
    /// True for `src/lib.rs` of a workspace member (where R4 looks for
    /// the crate-level lint attributes).
    pub is_crate_root: bool,
}

impl FileMeta {
    /// Classifies a workspace-relative path (`/`-separated).
    ///
    /// Returns `None` for files no rule applies to (e.g. paths outside
    /// the known top-level directories).
    pub fn for_path(rel: &str) -> Option<FileMeta> {
        let parts: Vec<&str> = rel.split('/').collect();
        let (origin, crate_name) = match parts.first().copied() {
            Some("crates") => (Origin::FirstParty, (*parts.get(1)?).to_string()),
            Some("vendor") => (Origin::Vendor, (*parts.get(1)?).to_string()),
            Some("tests") => (Origin::TopTests, "tests".to_string()),
            Some("examples") => (Origin::Examples, "examples".to_string()),
            Some("benches") => (Origin::TopTests, "benches".to_string()),
            _ => return None,
        };
        let is_test_file = match origin {
            Origin::TopTests => true,
            Origin::FirstParty | Origin::Vendor => {
                parts.get(2).is_some_and(|p| *p == "tests" || *p == "benches")
            }
            Origin::Examples => false,
        };
        let is_crate_root = matches!(origin, Origin::FirstParty | Origin::Vendor)
            && parts.len() == 4
            && parts[2] == "src"
            && parts[3] == "lib.rs";
        Some(FileMeta { path: rel.to_string(), crate_name, origin, is_test_file, is_crate_root })
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`R1`…`R8`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The offending source line, trimmed and capped.
    pub snippet: String,
    /// Human-readable explanation with the sanctioned fix.
    pub message: String,
}

/// Static description of one rule, used by `--list-rules` and the report.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable id (`R1`…`R8`).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line summary of the invariant.
    pub summary: &'static str,
}

/// All rules, in id order.
pub const RULES: [RuleInfo; 8] = [
    RuleInfo {
        id: "R1",
        name: "hot-path-hasher",
        summary: "hot-path crates must use planaria_hash containers (FastHashMap/FastHashSet/\
                  FixedIndex), not default-hasher HashMap/HashSet",
    },
    RuleInfo {
        id: "R2",
        name: "no-wall-clock",
        summary: "no Instant::now/SystemTime/thread_rng/std::env outside the timing allowlist",
    },
    RuleInfo {
        id: "R3",
        name: "no-unwrap",
        summary: "no .unwrap() outside test code; use expect(\"invariant\") or propagate",
    },
    RuleInfo {
        id: "R4",
        name: "crate-root-attrs",
        summary: "crate roots must carry #![forbid(unsafe_code)] and #![warn(missing_docs)]",
    },
    RuleInfo {
        id: "R5",
        name: "no-map-order-floats",
        summary: "no float accumulation driven by hash-map iteration order",
    },
    RuleInfo {
        id: "R6",
        name: "shared-json",
        summary: "JSON emitters route through planaria_common::json helpers",
    },
    RuleInfo {
        id: "R7",
        name: "no-debug-macros",
        summary: "no todo!/dbg!/unimplemented! anywhere in committed code",
    },
    RuleInfo {
        id: "R8",
        name: "vendored-deps-only",
        summary: "imports and manifests may only name workspace or vendored crates",
    },
];

/// Scan configuration: which crates are hot, which paths may read wall
/// clocks, which top-level crate names imports may resolve to.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate directory names whose maps must come from `planaria-hash`.
    pub hot_crates: Vec<String>,
    /// Path prefixes allowed to use wall-clock / environment sources.
    pub nondet_allow: Vec<String>,
    /// Top-level identifiers `use` declarations may start with, beyond
    /// the built-ins (`std`, `core`, `alloc`, `crate`, `self`, `super`,
    /// `proc_macro`). Populated from the workspace member directories.
    pub crate_idents: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            hot_crates: ["core", "cache", "dram", "sim", "trace"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            nondet_allow: [
                // The figure/benchmark harnesses parse argv and time grids.
                "crates/bench/",
                // The runner's RunReport measures wall-clock per cell.
                "crates/sim/src/runner.rs",
                // Offline trace CLI tool.
                "crates/trace/src/bin/",
                // The lint binary itself parses argv.
                "crates/lint/src/main.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            crate_idents: Vec::new(),
        }
    }
}

/// Lints one Rust source file; returns its violations in line order.
pub fn lint_source(meta: &FileMeta, source: &str, config: &Config) -> Vec<Violation> {
    let tokens = lex(source);
    let in_test = test_regions(&tokens);
    let lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();

    let ctx = Ctx { meta, tokens: &tokens, in_test: &in_test, lines: &lines, config };
    rule_hot_path_hasher(&ctx, &mut out);
    rule_no_wall_clock(&ctx, &mut out);
    rule_no_unwrap(&ctx, &mut out);
    rule_crate_root_attrs(&ctx, &mut out);
    rule_no_map_order_floats(&ctx, &mut out);
    rule_shared_json(&ctx, &mut out);
    rule_no_debug_macros(&ctx, &mut out);
    rule_vendored_imports(&ctx, &mut out);

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Lints one `Cargo.toml` (rule R8: no registry/git dependencies).
pub fn lint_manifest(rel_path: &str, source: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    // `[dependencies.name]` multi-line tables: remember the header until
    // the section closes, then require a path/workspace key inside.
    let mut pending_table: Option<(u32, String)> = None;
    let mut pending_ok = false;

    let flush_pending =
        |pending: &mut Option<(u32, String)>, ok: bool, out: &mut Vec<Violation>| {
            if let Some((line, snippet)) = pending.take() {
                if !ok {
                    out.push(Violation {
                        rule: "R8",
                        file: rel_path.to_string(),
                        line,
                        snippet,
                        message: "dependency table without `path` or `workspace = true` implies \
                                  a registry dependency; vendor it instead"
                            .to_string(),
                    });
                }
            }
        };

    for (idx, raw) in source.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_pending(&mut pending_table, pending_ok, &mut out);
            pending_ok = false;
            let section = line.trim_matches(['[', ']']);
            let is_dep_table = section.ends_with("dependencies");
            in_dep_section = is_dep_table;
            if !is_dep_table {
                if let Some((table, _name)) = section.rsplit_once('.') {
                    if table.ends_with("dependencies") {
                        pending_table = Some((line_no, snippet_of(raw)));
                    }
                }
            }
            continue;
        }
        if pending_table.is_some() {
            if line.starts_with("path") || line == "workspace = true" {
                pending_ok = true;
            }
            if line.starts_with("git") || line.starts_with("version") {
                // Tracked by the table-level check; a `git` key is its own
                // violation even when a path is also present.
                if line.starts_with("git") {
                    out.push(manifest_violation(rel_path, line_no, raw));
                }
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        // One dependency per line: `name = "1.0"` or `name = { … }`.
        let Some((_name, value)) = line.split_once('=') else { continue };
        let value = value.trim();
        let registry_like = value.starts_with('"')
            || value.contains("git =")
            || value.contains("git=")
            || (value.starts_with('{')
                && !value.contains("path")
                && !value.contains("workspace = true"));
        if registry_like {
            out.push(manifest_violation(rel_path, line_no, raw));
        }
    }
    flush_pending(&mut pending_table, pending_ok, &mut out);
    out
}

fn manifest_violation(rel_path: &str, line: u32, raw: &str) -> Violation {
    Violation {
        rule: "R8",
        file: rel_path.to_string(),
        line,
        snippet: snippet_of(raw),
        message: "dependency does not resolve to a workspace path; the build environment has \
                  no registry access — vendor the crate under vendor/ instead"
            .to_string(),
    }
}

struct Ctx<'a> {
    meta: &'a FileMeta,
    tokens: &'a [Token],
    in_test: &'a [bool],
    lines: &'a [&'a str],
    config: &'a Config,
}

impl Ctx<'_> {
    fn snippet(&self, line: u32) -> String {
        self.lines.get(line as usize - 1).map(|l| snippet_of(l)).unwrap_or_default()
    }

    fn emit(&self, out: &mut Vec<Violation>, rule: &'static str, line: u32, message: String) {
        out.push(Violation {
            rule,
            file: self.meta.path.clone(),
            line,
            snippet: self.snippet(line),
            message,
        });
    }

    /// Non-test production code: not a test file, token not in a
    /// `#[cfg(test)]` region.
    fn is_prod(&self, i: usize) -> bool {
        !self.meta.is_test_file && !self.in_test[i]
    }

    fn first_party_prod(&self) -> bool {
        matches!(self.meta.origin, Origin::FirstParty | Origin::Examples) && !self.meta.is_test_file
    }
}

fn snippet_of(line: &str) -> String {
    let t = line.trim();
    if t.len() > 120 {
        let mut end = 117;
        while !t.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}...", &t[..end])
    } else {
        t.to_string()
    }
}

/// Marks tokens inside `#[cfg(test)]`-gated items (and `#[test]` fns).
///
/// An attribute containing the `cfg` and `test` identifiers gates the
/// following item; the gated region runs to the item's closing brace (or
/// terminating semicolon for brace-less items like `use`).
fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Scan the attribute body for `cfg … test` or a bare `test`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut saw_cfg = false;
            let mut saw_test = false;
            let mut bare_test = None;
            while j < tokens.len() && depth > 0 {
                let t = &tokens[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                } else if t.is_ident("cfg") {
                    saw_cfg = true;
                } else if t.is_ident("not") {
                    // `#[cfg(not(test))]` gates *production* code.
                    saw_cfg = false;
                } else if t.is_ident("test") {
                    saw_test = true;
                    if j == i + 2 {
                        bare_test = Some(());
                    }
                }
                j += 1;
            }
            let gates_test = (saw_cfg && saw_test) || bare_test.is_some();
            if gates_test {
                // `j` is just past the closing ']'. Skip further
                // attributes, then mark the item through its `{…}` or `;`.
                let mut k = j;
                while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[')
                {
                    let mut d = 1usize;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        if tokens[k].is_punct('[') {
                            d += 1;
                        } else if tokens[k].is_punct(']') {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                let start = i;
                while k < tokens.len() {
                    if tokens[k].is_punct(';') {
                        k += 1;
                        break;
                    }
                    if tokens[k].is_punct('{') {
                        let mut d = 1usize;
                        k += 1;
                        while k < tokens.len() && d > 0 {
                            if tokens[k].is_punct('{') {
                                d += 1;
                            } else if tokens[k].is_punct('}') {
                                d -= 1;
                            }
                            k += 1;
                        }
                        break;
                    }
                    k += 1;
                }
                for slot in in_test.iter_mut().take(k).skip(start) {
                    *slot = true;
                }
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    in_test
}

/// R1 — default-hasher `HashMap`/`HashSet` in hot-path crates.
fn rule_hot_path_hasher(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if ctx.meta.origin != Origin::FirstParty
        || !ctx.config.hot_crates.contains(&ctx.meta.crate_name)
        || ctx.meta.is_test_file
    {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !ctx.is_prod(i) {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            ctx.emit(
                out,
                "R1",
                t.line,
                format!(
                    "std::collections::{} uses the seeded SipHash default; hot-path crates must \
                     use planaria_hash::Fast{} (deterministic FxHash) — or, on per-access lookup \
                     paths with a fixed entry budget, planaria_hash::FixedIndex",
                    t.text, t.text
                ),
            );
        }
    }
}

/// R2 — wall-clock / nondeterminism sources outside the allowlist.
fn rule_no_wall_clock(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if !ctx.first_party_prod() {
        return;
    }
    if ctx.config.nondet_allow.iter().any(|p| ctx.meta.path.starts_with(p.as_str())) {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !ctx.is_prod(i) {
            continue;
        }
        let bad =
            if t.is_ident("SystemTime") || t.is_ident("thread_rng") || t.is_ident("from_entropy") {
                Some(t.text.clone())
            } else if t.is_ident("Instant")
                && matches!(toks.get(i + 1), Some(c) if c.is_punct(':'))
                && matches!(toks.get(i + 2), Some(c) if c.is_punct(':'))
                && matches!(toks.get(i + 3), Some(n) if n.is_ident("now"))
            {
                Some("Instant::now".to_string())
            } else if t.is_ident("std")
                && matches!(toks.get(i + 1), Some(c) if c.is_punct(':'))
                && matches!(toks.get(i + 2), Some(c) if c.is_punct(':'))
                && matches!(toks.get(i + 3), Some(n) if n.is_ident("env"))
            {
                Some("std::env".to_string())
            } else {
                None
            };
        if let Some(what) = bad {
            ctx.emit(
                out,
                "R2",
                t.line,
                format!(
                    "{what} is a nondeterminism source; simulated code must be a pure function \
                     of its inputs (timing belongs in the runner/bench allowlist)"
                ),
            );
        }
    }
}

/// R3 — `.unwrap()` outside test code.
fn rule_no_unwrap(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if !ctx.first_party_prod() {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !ctx.is_prod(i) {
            continue;
        }
        if toks[i].is_ident("unwrap")
            && i > 0
            && toks[i - 1].is_punct('.')
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
        {
            ctx.emit(
                out,
                "R3",
                toks[i].line,
                ".unwrap() hides the violated invariant; use expect(\"why this cannot fail\") \
                 or propagate the error"
                    .to_string(),
            );
        }
    }
}

/// R4 — crate roots must carry the two crate-level lint attributes.
fn rule_crate_root_attrs(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if !ctx.meta.is_crate_root {
        return;
    }
    let toks = ctx.tokens;
    let mut has_forbid_unsafe = false;
    let mut has_missing_docs = false;
    for i in 0..toks.len() {
        // Inner attribute: `#` `!` `[` ident `(` ident `)` `]`.
        if toks[i].is_punct('#')
            && matches!(toks.get(i + 1), Some(t) if t.is_punct('!'))
            && matches!(toks.get(i + 2), Some(t) if t.is_punct('['))
        {
            let level = toks.get(i + 3);
            let arg = toks.get(i + 5);
            let is_level = |t: &Option<&Token>, names: &[&str]| {
                t.is_some_and(|t| names.iter().any(|n| t.is_ident(n)))
            };
            if is_level(&level, &["forbid", "deny"]) && is_level(&arg, &["unsafe_code"]) {
                has_forbid_unsafe = true;
            }
            if is_level(&level, &["warn", "deny", "forbid"]) && is_level(&arg, &["missing_docs"]) {
                has_missing_docs = true;
            }
        }
    }
    if !has_forbid_unsafe {
        ctx.emit(
            out,
            "R4",
            1,
            "crate root lacks #![forbid(unsafe_code)] (the whole workspace is safe Rust)"
                .to_string(),
        );
    }
    if !has_missing_docs {
        ctx.emit(
            out,
            "R4",
            1,
            "crate root lacks #![warn(missing_docs)] (rustdoc -D warnings gates CI)".to_string(),
        );
    }
}

/// R5 — float accumulation over hash-map iteration order.
fn rule_no_map_order_floats(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if !ctx.first_party_prod() {
        return;
    }
    const MAP_ITERS: [&str; 6] =
        ["values", "values_mut", "into_values", "keys", "into_keys", "drain"];
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !ctx.is_prod(i) {
            continue;
        }
        let t = &toks[i];
        if !(t.kind == TokenKind::Ident && MAP_ITERS.contains(&t.text.as_str())) {
            continue;
        }
        if !(matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
            && matches!(toks.get(i + 2), Some(p) if p.is_punct(')')))
        {
            continue;
        }
        // Look ahead within the same statement for a float accumulator.
        let mut j = i + 3;
        let limit = (i + 60).min(toks.len());
        while j < limit && !toks[j].is_punct(';') {
            let u = &toks[j];
            let float_turbofish = (u.is_ident("sum") || u.is_ident("product"))
                && matches!(toks.get(j + 1), Some(p) if p.is_punct(':'))
                && matches!(toks.get(j + 2), Some(p) if p.is_punct(':'))
                && matches!(toks.get(j + 3), Some(p) if p.is_punct('<'))
                && matches!(toks.get(j + 4), Some(f) if f.is_ident("f64") || f.is_ident("f32"));
            let float_fold = u.is_ident("fold")
                && matches!(toks.get(j + 1), Some(p) if p.is_punct('('))
                && matches!(
                    toks.get(j + 2),
                    Some(n) if n.kind == TokenKind::NumLit
                        && (n.text.contains('.')
                            || n.text.contains("f64")
                            || n.text.contains("f32"))
                );
            if float_turbofish || float_fold {
                ctx.emit(
                    out,
                    "R5",
                    t.line,
                    format!(
                        ".{}() iterates in hash order; float addition is not associative, so \
                         the sum depends on iteration order — accumulate integers, or collect \
                         and sort first",
                        t.text
                    ),
                );
                break;
            }
            j += 1;
        }
    }
}

/// R6 — JSON emitters route through `planaria_common::json`.
fn rule_shared_json(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if ctx.meta.origin != Origin::FirstParty {
        return;
    }
    let toks = ctx.tokens;
    let in_common_json = ctx.meta.path == "crates/common/src/json.rs";

    // (a) Local JSON-escape helper definitions.
    if !in_common_json {
        for i in 0..toks.len() {
            if toks[i].is_ident("fn")
                && matches!(
                    toks.get(i + 1),
                    Some(n) if n.is_ident("escape_json") || n.is_ident("json_escape")
                )
            {
                ctx.emit(
                    out,
                    "R6",
                    toks[i].line,
                    "local JSON escape helper duplicates planaria_common::json::escape; use \
                     the shared helper"
                        .to_string(),
                );
            }
        }
    }

    // (b) Schema emitters (a full `planaria-*-v1` schema-id string
    // literal) must reference the shared json module somewhere.
    if in_common_json {
        return;
    }
    let schema_lit = toks.iter().find(|t| {
        t.kind == TokenKind::StrLit && t.text.starts_with("planaria-") && t.text.ends_with("-v1")
    });
    if let Some(lit) = schema_lit {
        let uses_shared = toks.iter().any(|t| t.is_ident("json"));
        if !uses_shared {
            ctx.emit(
                out,
                "R6",
                lit.line,
                format!(
                    "file emits the `{}` schema but never references the planaria_common::json \
                     helpers; hand-rolled writers drift out of sync",
                    lit.text
                ),
            );
        }
    }
}

/// R7 — leftover debug/stub macros.
fn rule_no_debug_macros(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    const BANNED: [&str; 3] = ["todo", "dbg", "unimplemented"];
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident
            && BANNED.contains(&t.text.as_str())
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('!'))
            && matches!(toks.get(i + 2), Some(p) if p.is_punct('('))
        {
            ctx.emit(
                out,
                "R7",
                t.line,
                format!("{}!() must not land on any branch (tests included)", t.text),
            );
        }
    }
}

/// R8 (source half) — `use` declarations may only name known crates.
fn rule_vendored_imports(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    const BUILTIN: [&str; 7] = ["std", "core", "alloc", "crate", "self", "super", "proc_macro"];
    // Edition-2021 uniform paths also resolve `use foo::…` against items of
    // the *current module*; collect every ident this file declares (module,
    // type, `as` rename) so sibling-module re-exports are not flagged.
    const DECL_KEYWORDS: [&str; 9] =
        ["mod", "struct", "enum", "trait", "type", "fn", "union", "as", "macro_rules"];
    let toks = ctx.tokens;
    let mut local: Vec<&str> = Vec::new();
    for w in toks.windows(2) {
        if w[0].kind == TokenKind::Ident
            && w[1].kind == TokenKind::Ident
            && DECL_KEYWORDS.contains(&w[0].text.as_str())
        {
            local.push(w[1].text.as_str());
        }
    }
    for i in 0..toks.len() {
        if !toks[i].is_ident("use") {
            continue;
        }
        // Item position: start of file or after `;`, `}`, `{`, or an
        // attribute's closing `]` / visibility `pub`/`)`. Expression uses
        // of the word (none in practice — `use` is a keyword) are fine.
        let mut j = i + 1;
        // Skip leading `::` of `use ::foo` paths.
        while j < toks.len() && toks[j].is_punct(':') {
            j += 1;
        }
        let Some(first) = toks.get(j) else { continue };
        if first.kind != TokenKind::Ident {
            continue;
        }
        // Only flag single-segment-rooted paths: `use foo::…` / `use foo;`
        // (grouped imports `use {a, b}` start with '{' and are not used
        // in this workspace).
        let seg = first.text.as_str();
        if BUILTIN.contains(&seg)
            || ctx.config.crate_idents.iter().any(|c| c == seg)
            || local.contains(&seg)
        {
            continue;
        }
        ctx.emit(
            out,
            "R8",
            toks[i].line,
            format!(
                "`use {seg}::…` does not resolve to a workspace or vendored crate; the build \
                 environment has no registry access"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(path: &str) -> FileMeta {
        FileMeta::for_path(path).expect("classifiable path")
    }

    fn cfg() -> Config {
        Config {
            crate_idents: ["planaria_common", "planaria_hash", "rand", "serde"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            ..Config::default()
        }
    }

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        let mut ids: Vec<&'static str> =
            lint_source(&meta(path), src, &cfg()).into_iter().map(|v| v.rule).collect();
        ids.dedup();
        ids
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "
            pub fn prod() {}
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { let m: HashMap<u64, u64> = HashMap::new(); m.len(); }
            }
        ";
        assert!(rules_fired("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn hot_crate_hashmap_fires_outside_tests() {
        let src =
            "use std::collections::HashMap;\npub fn f() -> HashMap<u64, u64> { HashMap::new() }\n";
        assert_eq!(rules_fired("crates/cache/src/x.rs", src), ["R1"]);
        // Same file in a non-hot crate: only the import rule is clean too.
        assert!(rules_fired("crates/telemetry/src/x.rs", src).is_empty());
    }

    #[test]
    fn approved_hot_path_containers_do_not_fire() {
        // The planaria_hash containers are the sanctioned replacements:
        // FastHashMap/FastHashSet for general maps, FixedIndex for the
        // fixed-capacity open-addressed page→slot tables on the SLP/TLP
        // per-access paths. None of them may trip R1 in a hot crate.
        let src = "
            use planaria_hash::{FastHashMap, FastHashSet, FixedIndex};
            pub fn f() -> (FastHashMap<u64, u64>, FastHashSet<u64>, FixedIndex) {
                (FastHashMap::default(), FastHashSet::default(), FixedIndex::with_capacity(128))
            }
        ";
        assert!(rules_fired("crates/core/src/x.rs", src).is_empty());
        assert!(rules_fired("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn manifest_registry_dep_is_flagged() {
        let bad = "[dependencies]\nserde = \"1.0\"\nrand = { path = \"../rand\" }\n";
        let v = lint_manifest("crates/x/Cargo.toml", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        let good = "[dependencies]\nrand = { workspace = true }\n\n[dev-dependencies]\nproptest = { path = \"../../vendor/proptest\" }\n";
        assert!(lint_manifest("crates/x/Cargo.toml", good).is_empty());
    }

    #[test]
    fn manifest_git_dep_is_flagged() {
        let bad = "[dependencies]\nfoo = { git = \"https://example.com/foo\" }\n";
        assert_eq!(lint_manifest("crates/x/Cargo.toml", bad).len(), 1);
    }
}
