//! The rule set: what each invariant is, and how it is detected.
//!
//! Every rule works on the token stream produced by [`crate::lexer`], so
//! rule-triggering text inside comments, doc comments and string literals
//! never false-positives. Rules that only make sense outside test code
//! (R1, R2, R3, R5) additionally skip `#[cfg(test)]`-gated regions and
//! test files (`tests/`, `benches/`) — tests may use std maps, wall
//! clocks and `unwrap()` freely.

use crate::lexer::{lex, Token, TokenKind};

/// Where a scanned file lives in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// `crates/<name>/…` — first-party simulator code.
    FirstParty,
    /// `vendor/<name>/…` — vendored offline dependency stand-ins.
    Vendor,
    /// Top-level `tests/…` — cross-crate integration tests.
    TopTests,
    /// Top-level `examples/…` — user-facing example programs.
    Examples,
}

/// Everything the rules need to know about a file besides its tokens.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Owning crate directory name (`core`, `planaria-hash`, …), or the
    /// top-level directory name for `tests/` / `examples/` files.
    pub crate_name: String,
    /// Which part of the workspace the file belongs to.
    pub origin: Origin,
    /// True for files under any `tests/` or `benches/` directory.
    pub is_test_file: bool,
    /// True for `src/lib.rs` of a workspace member (where R4 looks for
    /// the crate-level lint attributes).
    pub is_crate_root: bool,
}

impl FileMeta {
    /// Classifies a workspace-relative path (`/`-separated).
    ///
    /// Returns `None` for files no rule applies to (e.g. paths outside
    /// the known top-level directories).
    pub fn for_path(rel: &str) -> Option<FileMeta> {
        let parts: Vec<&str> = rel.split('/').collect();
        let (origin, crate_name) = match parts.first().copied() {
            Some("crates") => (Origin::FirstParty, (*parts.get(1)?).to_string()),
            Some("vendor") => (Origin::Vendor, (*parts.get(1)?).to_string()),
            Some("tests") => (Origin::TopTests, "tests".to_string()),
            Some("examples") => (Origin::Examples, "examples".to_string()),
            Some("benches") => (Origin::TopTests, "benches".to_string()),
            _ => return None,
        };
        let is_test_file = match origin {
            Origin::TopTests => true,
            Origin::FirstParty | Origin::Vendor => {
                parts.get(2).is_some_and(|p| *p == "tests" || *p == "benches")
            }
            Origin::Examples => false,
        };
        let is_crate_root = matches!(origin, Origin::FirstParty | Origin::Vendor)
            && parts.len() == 4
            && parts[2] == "src"
            && parts[3] == "lib.rs";
        Some(FileMeta { path: rel.to_string(), crate_name, origin, is_test_file, is_crate_root })
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`R1`…`R12`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The offending source line, trimmed and capped.
    pub snippet: String,
    /// Human-readable explanation with the sanctioned fix.
    pub message: String,
}

/// Static description of one rule, used by `--list-rules`, `--explain`
/// and the report.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable id (`R1`…`R12`).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line summary of the invariant.
    pub summary: &'static str,
    /// Why the invariant exists (shown by `--explain`).
    pub rationale: &'static str,
    /// A minimal example that fires the rule.
    pub fires: &'static str,
    /// The sanctioned counterpart that does not fire.
    pub clean: &'static str,
}

/// All rules, in id order.
pub const RULES: [RuleInfo; 12] = [
    RuleInfo {
        id: "R1",
        name: "hot-path-hasher",
        summary: "hot-path crates must use planaria_hash containers (FastHashMap/FastHashSet/\
                  FixedIndex), not default-hasher HashMap/HashSet",
        rationale: "std's default hasher is SipHash with a per-process random seed: it is slow \
                    on the per-access lookup paths and its iteration order varies run to run, \
                    which breaks the bit-identical-results guarantee the moment order leaks.",
        fires: "use std::collections::HashMap;\nlet m: HashMap<u64, u64> = HashMap::new();",
        clean: "use planaria_hash::FastHashMap;\nlet m: FastHashMap<u64, u64> = \
                FastHashMap::default();",
    },
    RuleInfo {
        id: "R2",
        name: "no-wall-clock",
        summary: "no Instant::now/SystemTime/thread_rng/std::env outside the timing allowlist",
        rationale: "simulated state must be a pure function of its inputs; a wall-clock read or \
                    ambient environment lookup makes results irreproducible. Timing belongs in \
                    the allowlisted runner/bench layer.",
        fires: "let t0 = std::time::Instant::now();",
        clean: "fn step(&mut self, now: Cycle) { /* time arrives as data */ }",
    },
    RuleInfo {
        id: "R3",
        name: "no-unwrap",
        summary: "no .unwrap() outside test code; use expect(\"invariant\") or propagate",
        rationale: ".unwrap() erases which invariant was violated; a panic message naming the \
                    broken assumption is the difference between a five-minute fix and a \
                    debugging session.",
        fires: "let v = map.get(&k).unwrap();",
        clean: "let v = map.get(&k).expect(\"key inserted by the constructor\");",
    },
    RuleInfo {
        id: "R4",
        name: "crate-root-attrs",
        summary: "crate roots must carry #![forbid(unsafe_code)] and #![warn(missing_docs)]",
        rationale: "the whole workspace is safe Rust and rustdoc -D warnings gates CI; both \
                    properties are only machine-checked if every crate root opts in.",
        fires: "//! Crate docs.\npub fn f() {}",
        clean: "//! Crate docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}",
    },
    RuleInfo {
        id: "R5",
        name: "no-map-order-floats",
        summary: "no float accumulation driven by hash-map iteration order",
        rationale: "float addition is not associative, so summing .values() in hash order \
                    yields different totals on different runs even with the same entries.",
        fires: "let total: f64 = map.values().sum::<f64>();",
        clean: "let mut vs: Vec<_> = map.values().collect();\nvs.sort_by(f64::total_cmp);\n\
                let total: f64 = vs.iter().copied().sum();",
    },
    RuleInfo {
        id: "R6",
        name: "shared-json",
        summary: "JSON emitters route through planaria_common::json helpers",
        rationale: "hand-rolled writers drift: key order, float formatting and escaping all \
                    become schema hazards. One shared writer keeps equal reports byte-identical.",
        fires: "fn escape_json(s: &str) -> String { /* local copy */ String::new() }",
        clean: "use planaria_common::json::Writer;\nlet mut w = Writer::pretty();",
    },
    RuleInfo {
        id: "R7",
        name: "no-debug-macros",
        summary: "no todo!/dbg!/unimplemented! anywhere in committed code",
        rationale: "todo!()/unimplemented!() are runtime landmines on untested branches and \
                    dbg!() pollutes stderr that CI parses; none belong in committed code.",
        fires: "fn handle(x: u8) { todo!(\"later\") }",
        clean: "fn handle(x: u8) -> Result<(), Error> { Err(Error::Unsupported(x)) }",
    },
    RuleInfo {
        id: "R8",
        name: "vendored-deps-only",
        summary: "imports and manifests may only name workspace or vendored crates",
        rationale: "the build environment has no registry access; a crates.io dependency \
                    compiles on the author's machine and breaks everywhere else.",
        fires: "[dependencies]\nserde = \"1.0\"",
        clean: "[dependencies]\nserde = { path = \"../../vendor/serde\" }",
    },
    RuleInfo {
        id: "R9",
        name: "no-transitive-wall-clock",
        summary: "no function may *reach* a wall-clock/entropy source through calls (call-graph \
                  upgrade of R2's call-site check)",
        rationale: "R2 only sees the literal call site; hiding Instant::now() one helper away \
                    defeats it. R9 walks the workspace call graph backwards from every direct \
                    read, so the taint is caught wherever it enters simulated code. Allowlisted \
                    files are barriers: their fns are the sanctioned timing API.",
        fires: "fn stamp() -> u64 { /* Instant::now() here */ 0 }\n\
                fn decide(&mut self) { let _ = stamp(); } // R9: reaches the clock",
        clean: "fn decide(&mut self, now: Cycle) { /* timestamps arrive as data */ }",
    },
    RuleInfo {
        id: "R10",
        name: "no-map-order-sinks",
        summary: "no hash-map iteration flowing into ordered sinks (Vec pushes, JSON writers, \
                  float accumulators) without an intervening sort",
        rationale: "generalizes R5: any order-sensitive sink fed from hash iteration — a Vec \
                    that is never sorted, a JSON writer, a float += — bakes the hasher's \
                    whim into output bytes.",
        fires: "for v in map.values() { out.push(v); } // `out` never sorted",
        clean: "let mut items: Vec<_> = map.iter().collect();\nitems.sort_by_key(|(k, _)| *k);\n\
                for (_, v) in items { out.push(v); }",
    },
    RuleInfo {
        id: "R11",
        name: "checked-narrowing",
        summary: "parsing/deserialization modules must not use narrowing `as` casts; use \
                  From/try_from/checked conversions",
        rationale: "`count as usize` on attacker-controlled or on-disk data silently truncates \
                    out-of-range values into plausible small ones; try_from turns the same \
                    situation into a typed, testable error (FieldTooLarge).",
        fires: "let n = header_count as usize; // u64 from disk",
        clean: "let n = usize::try_from(header_count)\n    .map_err(|_| ParseTraceError::\
                FieldTooLarge { what: \"count\", value: header_count, max: MAX as u64 })?;",
    },
    RuleInfo {
        id: "R12",
        name: "concurrency-hygiene",
        summary: "no unbounded channels anywhere; no Rc/RefCell in Send device state; no locks \
                  in hot crates outside the allowlist",
        rationale: "an unbounded channel is an OOM with extra steps under load; Rc/RefCell in \
                    serving state blocks Send and hides aliasing; a lock on a hot path \
                    serializes the very parallelism the sharded design exists to provide.",
        fires: "let (tx, rx) = std::sync::mpsc::channel();",
        clean: "let (tx, rx) = std::sync::mpsc::sync_channel(MAILBOX_BOUND);",
    },
];

/// Scan configuration: which crates are hot, which paths may read wall
/// clocks, which top-level crate names imports may resolve to.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate directory names whose maps must come from `planaria-hash`.
    pub hot_crates: Vec<String>,
    /// Path prefixes allowed to use wall-clock / environment sources.
    pub nondet_allow: Vec<String>,
    /// Top-level identifiers `use` declarations may start with, beyond
    /// the built-ins (`std`, `core`, `alloc`, `crate`, `self`, `super`,
    /// `proc_macro`). Populated from the workspace member directories.
    pub crate_idents: Vec<String>,
    /// Files whose parsing/deserialization code must use checked
    /// conversions instead of narrowing `as` casts (rule R11). Matched
    /// as path prefixes.
    pub narrow_cast_paths: Vec<String>,
    /// Crate directory names whose device state must stay `Send`: no
    /// `Rc`/`RefCell` (rule R12).
    pub send_state_crates: Vec<String>,
    /// Path prefixes exempt from the hot-crate lock ban (rule R12) —
    /// reviewed sites like the runner's Arc-shared trace cache.
    pub lock_allow: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            hot_crates: ["core", "cache", "dram", "sim", "trace"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            nondet_allow: [
                // The figure/benchmark harnesses parse argv and time grids.
                "crates/bench/",
                // The runner's RunReport measures wall-clock per cell.
                "crates/sim/src/runner.rs",
                // Offline trace CLI tool.
                "crates/trace/src/bin/",
                // The lint binary itself parses argv.
                "crates/lint/src/main.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            crate_idents: Vec::new(),
            narrow_cast_paths: [
                // On-disk trace codec: every length/count field is
                // adversarial until bounds-checked.
                "crates/trace/src/io.rs",
                // Snapshot restore parses operator-supplied JSON.
                "crates/serve/src/snapshot.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            send_state_crates: ["serve"].iter().map(|s| s.to_string()).collect(),
            lock_allow: [
                // The runner's cross-thread trace cache and sample sink
                // are reviewed, coarse-grained and off the per-access path.
                "crates/sim/src/runner.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        }
    }
}

/// Lints one Rust source file in isolation; returns its violations in
/// line order.
///
/// Runs every per-file rule **plus** a single-file call-graph pass, so
/// the flow-aware rules (R9) fire on intra-file taint. Cross-file taint
/// needs the whole workspace — use [`crate::lint_files`] for that.
pub fn lint_source(meta: &FileMeta, source: &str, config: &Config) -> Vec<Violation> {
    let files = [crate::SourceFile { meta: meta.clone(), text: source.to_string() }];
    crate::lint_files(&files, config).violations
}

/// The token-level half of [`lint_source`]: rules R1–R8 and R10–R12,
/// which need only this one file's tokens.
pub(crate) fn lint_source_tokens(meta: &FileMeta, source: &str, config: &Config) -> Vec<Violation> {
    let tokens = lex(source);
    let in_test = test_regions(&tokens);
    let lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();

    let ctx = Ctx { meta, tokens: &tokens, in_test: &in_test, lines: &lines, config };
    rule_hot_path_hasher(&ctx, &mut out);
    rule_no_wall_clock(&ctx, &mut out);
    rule_no_unwrap(&ctx, &mut out);
    rule_crate_root_attrs(&ctx, &mut out);
    rule_no_map_order_floats(&ctx, &mut out);
    rule_shared_json(&ctx, &mut out);
    rule_no_debug_macros(&ctx, &mut out);
    rule_vendored_imports(&ctx, &mut out);
    rule_map_order_sinks(&ctx, &mut out);
    rule_checked_narrowing(&ctx, &mut out);
    rule_concurrency_hygiene(&ctx, &mut out);

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Lints one `Cargo.toml` (rule R8: no registry/git dependencies).
pub fn lint_manifest(rel_path: &str, source: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    // `[dependencies.name]` multi-line tables: remember the header until
    // the section closes, then require a path/workspace key inside.
    let mut pending_table: Option<(u32, String)> = None;
    let mut pending_ok = false;

    let flush_pending =
        |pending: &mut Option<(u32, String)>, ok: bool, out: &mut Vec<Violation>| {
            if let Some((line, snippet)) = pending.take() {
                if !ok {
                    out.push(Violation {
                        rule: "R8",
                        file: rel_path.to_string(),
                        line,
                        snippet,
                        message: "dependency table without `path` or `workspace = true` implies \
                                  a registry dependency; vendor it instead"
                            .to_string(),
                    });
                }
            }
        };

    for (idx, raw) in source.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_pending(&mut pending_table, pending_ok, &mut out);
            pending_ok = false;
            let section = line.trim_matches(['[', ']']);
            let is_dep_table = section.ends_with("dependencies");
            in_dep_section = is_dep_table;
            if !is_dep_table {
                if let Some((table, _name)) = section.rsplit_once('.') {
                    if table.ends_with("dependencies") {
                        pending_table = Some((line_no, snippet_of(raw)));
                    }
                }
            }
            continue;
        }
        if pending_table.is_some() {
            if line.starts_with("path") || line == "workspace = true" {
                pending_ok = true;
            }
            if line.starts_with("git") || line.starts_with("version") {
                // Tracked by the table-level check; a `git` key is its own
                // violation even when a path is also present.
                if line.starts_with("git") {
                    out.push(manifest_violation(rel_path, line_no, raw));
                }
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        // One dependency per line: `name = "1.0"` or `name = { … }`.
        let Some((_name, value)) = line.split_once('=') else { continue };
        let value = value.trim();
        let registry_like = value.starts_with('"')
            || value.contains("git =")
            || value.contains("git=")
            || (value.starts_with('{')
                && !value.contains("path")
                && !value.contains("workspace = true"));
        if registry_like {
            out.push(manifest_violation(rel_path, line_no, raw));
        }
    }
    flush_pending(&mut pending_table, pending_ok, &mut out);
    out
}

fn manifest_violation(rel_path: &str, line: u32, raw: &str) -> Violation {
    Violation {
        rule: "R8",
        file: rel_path.to_string(),
        line,
        snippet: snippet_of(raw),
        message: "dependency does not resolve to a workspace path; the build environment has \
                  no registry access — vendor the crate under vendor/ instead"
            .to_string(),
    }
}

struct Ctx<'a> {
    meta: &'a FileMeta,
    tokens: &'a [Token],
    in_test: &'a [bool],
    lines: &'a [&'a str],
    config: &'a Config,
}

impl Ctx<'_> {
    fn snippet(&self, line: u32) -> String {
        self.lines.get(line as usize - 1).map(|l| snippet_of(l)).unwrap_or_default()
    }

    fn emit(&self, out: &mut Vec<Violation>, rule: &'static str, line: u32, message: String) {
        out.push(Violation {
            rule,
            file: self.meta.path.clone(),
            line,
            snippet: self.snippet(line),
            message,
        });
    }

    /// Non-test production code: not a test file, token not in a
    /// `#[cfg(test)]` region.
    fn is_prod(&self, i: usize) -> bool {
        !self.meta.is_test_file && !self.in_test[i]
    }

    fn first_party_prod(&self) -> bool {
        matches!(self.meta.origin, Origin::FirstParty | Origin::Examples) && !self.meta.is_test_file
    }
}

pub(crate) fn snippet_of(line: &str) -> String {
    let t = line.trim();
    if t.len() > 120 {
        let mut end = 117;
        while !t.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}...", &t[..end])
    } else {
        t.to_string()
    }
}

/// Marks tokens inside `#[cfg(test)]`-gated items (and `#[test]` fns).
///
/// An attribute containing the `cfg` and `test` identifiers gates the
/// following item; the gated region runs to the item's closing brace (or
/// terminating semicolon for brace-less items like `use`).
pub(crate) fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Scan the attribute body for `cfg … test` or a bare `test`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut saw_cfg = false;
            let mut saw_test = false;
            let mut bare_test = None;
            while j < tokens.len() && depth > 0 {
                let t = &tokens[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                } else if t.is_ident("cfg") {
                    saw_cfg = true;
                } else if t.is_ident("not") {
                    // `#[cfg(not(test))]` gates *production* code.
                    saw_cfg = false;
                } else if t.is_ident("test") {
                    saw_test = true;
                    if j == i + 2 {
                        bare_test = Some(());
                    }
                }
                j += 1;
            }
            let gates_test = (saw_cfg && saw_test) || bare_test.is_some();
            if gates_test {
                // `j` is just past the closing ']'. Skip further
                // attributes, then mark the item through its `{…}` or `;`.
                let mut k = j;
                while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[')
                {
                    let mut d = 1usize;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        if tokens[k].is_punct('[') {
                            d += 1;
                        } else if tokens[k].is_punct(']') {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                let start = i;
                while k < tokens.len() {
                    if tokens[k].is_punct(';') {
                        k += 1;
                        break;
                    }
                    if tokens[k].is_punct('{') {
                        let mut d = 1usize;
                        k += 1;
                        while k < tokens.len() && d > 0 {
                            if tokens[k].is_punct('{') {
                                d += 1;
                            } else if tokens[k].is_punct('}') {
                                d -= 1;
                            }
                            k += 1;
                        }
                        break;
                    }
                    k += 1;
                }
                for slot in in_test.iter_mut().take(k).skip(start) {
                    *slot = true;
                }
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    in_test
}

/// R1 — default-hasher `HashMap`/`HashSet` in hot-path crates.
fn rule_hot_path_hasher(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if ctx.meta.origin != Origin::FirstParty
        || !ctx.config.hot_crates.contains(&ctx.meta.crate_name)
        || ctx.meta.is_test_file
    {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !ctx.is_prod(i) {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            ctx.emit(
                out,
                "R1",
                t.line,
                format!(
                    "std::collections::{} uses the seeded SipHash default; hot-path crates must \
                     use planaria_hash::Fast{} (deterministic FxHash) — or, on per-access lookup \
                     paths with a fixed entry budget, planaria_hash::FixedIndex",
                    t.text, t.text
                ),
            );
        }
    }
}

/// Recognises a direct wall-clock / nondeterminism pattern at token `i`:
/// `SystemTime`, `thread_rng`, `from_entropy`, `Instant::now`,
/// `std::env`. Returns what was reached. Shared between R2 (call-site
/// reports) and the R9 call-graph taint pass in [`crate::callgraph`].
pub(crate) fn wall_clock_at(toks: &[Token], i: usize) -> Option<String> {
    let t = toks.get(i)?;
    if t.is_ident("SystemTime") || t.is_ident("thread_rng") || t.is_ident("from_entropy") {
        return Some(t.text.clone());
    }
    let qualified = |name: &str| {
        matches!(toks.get(i + 1), Some(c) if c.is_punct(':'))
            && matches!(toks.get(i + 2), Some(c) if c.is_punct(':'))
            && matches!(toks.get(i + 3), Some(n) if n.is_ident(name))
    };
    if t.is_ident("Instant") && qualified("now") {
        return Some("Instant::now".to_string());
    }
    if t.is_ident("std") && qualified("env") {
        return Some("std::env".to_string());
    }
    None
}

/// R2 — wall-clock / nondeterminism sources outside the allowlist.
fn rule_no_wall_clock(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if !ctx.first_party_prod() {
        return;
    }
    if ctx.config.nondet_allow.iter().any(|p| ctx.meta.path.starts_with(p.as_str())) {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !ctx.is_prod(i) {
            continue;
        }
        if let Some(what) = wall_clock_at(toks, i) {
            ctx.emit(
                out,
                "R2",
                t.line,
                format!(
                    "{what} is a nondeterminism source; simulated code must be a pure function \
                     of its inputs (timing belongs in the runner/bench allowlist)"
                ),
            );
        }
    }
}

/// R3 — `.unwrap()` outside test code.
fn rule_no_unwrap(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if !ctx.first_party_prod() {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !ctx.is_prod(i) {
            continue;
        }
        if toks[i].is_ident("unwrap")
            && i > 0
            && toks[i - 1].is_punct('.')
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
        {
            ctx.emit(
                out,
                "R3",
                toks[i].line,
                ".unwrap() hides the violated invariant; use expect(\"why this cannot fail\") \
                 or propagate the error"
                    .to_string(),
            );
        }
    }
}

/// R4 — crate roots must carry the two crate-level lint attributes.
fn rule_crate_root_attrs(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if !ctx.meta.is_crate_root {
        return;
    }
    let toks = ctx.tokens;
    let mut has_forbid_unsafe = false;
    let mut has_missing_docs = false;
    for i in 0..toks.len() {
        // Inner attribute: `#` `!` `[` ident `(` ident `)` `]`.
        if toks[i].is_punct('#')
            && matches!(toks.get(i + 1), Some(t) if t.is_punct('!'))
            && matches!(toks.get(i + 2), Some(t) if t.is_punct('['))
        {
            let level = toks.get(i + 3);
            let arg = toks.get(i + 5);
            let is_level = |t: &Option<&Token>, names: &[&str]| {
                t.is_some_and(|t| names.iter().any(|n| t.is_ident(n)))
            };
            if is_level(&level, &["forbid", "deny"]) && is_level(&arg, &["unsafe_code"]) {
                has_forbid_unsafe = true;
            }
            if is_level(&level, &["warn", "deny", "forbid"]) && is_level(&arg, &["missing_docs"]) {
                has_missing_docs = true;
            }
        }
    }
    if !has_forbid_unsafe {
        ctx.emit(
            out,
            "R4",
            1,
            "crate root lacks #![forbid(unsafe_code)] (the whole workspace is safe Rust)"
                .to_string(),
        );
    }
    if !has_missing_docs {
        ctx.emit(
            out,
            "R4",
            1,
            "crate root lacks #![warn(missing_docs)] (rustdoc -D warnings gates CI)".to_string(),
        );
    }
}

/// R5 — float accumulation over hash-map iteration order.
fn rule_no_map_order_floats(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if !ctx.first_party_prod() {
        return;
    }
    const MAP_ITERS: [&str; 6] =
        ["values", "values_mut", "into_values", "keys", "into_keys", "drain"];
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !ctx.is_prod(i) {
            continue;
        }
        let t = &toks[i];
        if !(t.kind == TokenKind::Ident && MAP_ITERS.contains(&t.text.as_str())) {
            continue;
        }
        if !(matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
            && matches!(toks.get(i + 2), Some(p) if p.is_punct(')')))
        {
            continue;
        }
        // Look ahead within the same statement for a float accumulator.
        let mut j = i + 3;
        let limit = (i + 60).min(toks.len());
        while j < limit && !toks[j].is_punct(';') {
            let u = &toks[j];
            let float_turbofish = (u.is_ident("sum") || u.is_ident("product"))
                && matches!(toks.get(j + 1), Some(p) if p.is_punct(':'))
                && matches!(toks.get(j + 2), Some(p) if p.is_punct(':'))
                && matches!(toks.get(j + 3), Some(p) if p.is_punct('<'))
                && matches!(toks.get(j + 4), Some(f) if f.is_ident("f64") || f.is_ident("f32"));
            let float_fold = u.is_ident("fold")
                && matches!(toks.get(j + 1), Some(p) if p.is_punct('('))
                && matches!(
                    toks.get(j + 2),
                    Some(n) if n.kind == TokenKind::NumLit
                        && (n.text.contains('.')
                            || n.text.contains("f64")
                            || n.text.contains("f32"))
                );
            if float_turbofish || float_fold {
                ctx.emit(
                    out,
                    "R5",
                    t.line,
                    format!(
                        ".{}() iterates in hash order; float addition is not associative, so \
                         the sum depends on iteration order — accumulate integers, or collect \
                         and sort first",
                        t.text
                    ),
                );
                break;
            }
            j += 1;
        }
    }
}

/// R6 — JSON emitters route through `planaria_common::json`.
fn rule_shared_json(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if ctx.meta.origin != Origin::FirstParty {
        return;
    }
    let toks = ctx.tokens;
    let in_common_json = ctx.meta.path == "crates/common/src/json.rs";

    // (a) Local JSON-escape helper definitions.
    if !in_common_json {
        for i in 0..toks.len() {
            if toks[i].is_ident("fn")
                && matches!(
                    toks.get(i + 1),
                    Some(n) if n.is_ident("escape_json") || n.is_ident("json_escape")
                )
            {
                ctx.emit(
                    out,
                    "R6",
                    toks[i].line,
                    "local JSON escape helper duplicates planaria_common::json::escape; use \
                     the shared helper"
                        .to_string(),
                );
            }
        }
    }

    // (b) Schema emitters (a full `planaria-*-v1` schema-id string
    // literal) must reference the shared json module somewhere.
    if in_common_json {
        return;
    }
    let schema_lit = toks.iter().find(|t| {
        t.kind == TokenKind::StrLit && t.text.starts_with("planaria-") && t.text.ends_with("-v1")
    });
    if let Some(lit) = schema_lit {
        let uses_shared = toks.iter().any(|t| t.is_ident("json"));
        if !uses_shared {
            ctx.emit(
                out,
                "R6",
                lit.line,
                format!(
                    "file emits the `{}` schema but never references the planaria_common::json \
                     helpers; hand-rolled writers drift out of sync",
                    lit.text
                ),
            );
        }
    }
}

/// R7 — leftover debug/stub macros.
fn rule_no_debug_macros(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    const BANNED: [&str; 3] = ["todo", "dbg", "unimplemented"];
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident
            && BANNED.contains(&t.text.as_str())
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('!'))
            && matches!(toks.get(i + 2), Some(p) if p.is_punct('('))
        {
            ctx.emit(
                out,
                "R7",
                t.line,
                format!("{}!() must not land on any branch (tests included)", t.text),
            );
        }
    }
}

/// R8 (source half) — `use` declarations may only name known crates.
fn rule_vendored_imports(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    const BUILTIN: [&str; 7] = ["std", "core", "alloc", "crate", "self", "super", "proc_macro"];
    // Edition-2021 uniform paths also resolve `use foo::…` against items of
    // the *current module*; collect every ident this file declares (module,
    // type, `as` rename) so sibling-module re-exports are not flagged.
    const DECL_KEYWORDS: [&str; 9] =
        ["mod", "struct", "enum", "trait", "type", "fn", "union", "as", "macro_rules"];
    let toks = ctx.tokens;
    let mut local: Vec<&str> = Vec::new();
    for w in toks.windows(2) {
        if w[0].kind == TokenKind::Ident
            && w[1].kind == TokenKind::Ident
            && DECL_KEYWORDS.contains(&w[0].text.as_str())
        {
            local.push(w[1].text.as_str());
        }
    }
    for i in 0..toks.len() {
        if !toks[i].is_ident("use") {
            continue;
        }
        // Item position: start of file or after `;`, `}`, `{`, or an
        // attribute's closing `]` / visibility `pub`/`)`. Expression uses
        // of the word (none in practice — `use` is a keyword) are fine.
        let mut j = i + 1;
        // Skip leading `::` of `use ::foo` paths.
        while j < toks.len() && toks[j].is_punct(':') {
            j += 1;
        }
        let Some(first) = toks.get(j) else { continue };
        if first.kind != TokenKind::Ident {
            continue;
        }
        // Only flag single-segment-rooted paths: `use foo::…` / `use foo;`
        // (grouped imports `use {a, b}` start with '{' and are not used
        // in this workspace).
        let seg = first.text.as_str();
        if BUILTIN.contains(&seg)
            || ctx.config.crate_idents.iter().any(|c| c == seg)
            || local.contains(&seg)
        {
            continue;
        }
        ctx.emit(
            out,
            "R8",
            toks[i].line,
            format!(
                "`use {seg}::…` does not resolve to a workspace or vendored crate; the build \
                 environment has no registry access"
            ),
        );
    }
}

/// Hash-map container type names rule R10 tracks.
const MAP_TYPES: [&str; 4] = ["HashMap", "HashSet", "FastHashMap", "FastHashSet"];

/// Iterator-producing methods whose order is the hasher's.
const MAP_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// R10 — hash-map iteration flowing into ordered sinks.
///
/// Tracks, per file: identifiers *declared* as hash maps (`x: FastHashMap<…>`
/// or `x = HashMap::new()`), identifiers declared as float accumulators,
/// and identifiers that are sorted somewhere (`x.sort*`). A `for` loop
/// whose header iterates a map identifier is then scanned for ordered
/// sinks in its body: `vec.push(…)` where `vec` is never sorted, a JSON
/// writer `.key(…)`, `push_str`/`write!`, or `float += …`. Chained
/// iterator expressions outside `for` headers are *not* tracked (a
/// documented false negative — R5 covers the float-fold shape of those).
fn rule_map_order_sinks(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if !ctx.first_party_prod() {
        return;
    }
    let toks = ctx.tokens;

    // Pass 1: classify identifiers by their declarations.
    let mut map_idents: Vec<&str> = Vec::new();
    let mut float_idents: Vec<&str> = Vec::new();
    let mut sorted_idents: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `name: [& mut 'a]* MapType` / `name: f64` — a single colon
        // (both neighbors must not be ':', or this is a `::` path).
        let single_colon = matches!(toks.get(i + 1), Some(p) if p.is_punct(':'))
            && !matches!(toks.get(i + 2), Some(p) if p.is_punct(':'))
            && !(i > 0 && toks[i - 1].is_punct(':'));
        if single_colon {
            let mut j = i + 2;
            while matches!(
                toks.get(j),
                Some(t) if t.is_punct('&') || t.is_ident("mut") || t.kind == TokenKind::Lifetime
            ) {
                j += 1;
            }
            if let Some(ty) = toks.get(j) {
                if MAP_TYPES.iter().any(|m| ty.is_ident(m)) {
                    map_idents.push(t.text.as_str());
                } else if ty.is_ident("f64") || ty.is_ident("f32") {
                    float_idents.push(t.text.as_str());
                }
            }
        }
        // `name = MapType::…` / `name = 0.0` (plain assignment, not ==).
        let plain_assign = matches!(toks.get(i + 1), Some(p) if p.is_punct('='))
            && !matches!(toks.get(i + 2), Some(p) if p.is_punct('='))
            && !(i > 0 && toks[i - 1].is_punct('='));
        if plain_assign {
            match toks.get(i + 2) {
                Some(ty)
                    if MAP_TYPES.iter().any(|m| ty.is_ident(m))
                        && matches!(toks.get(i + 3), Some(p) if p.is_punct(':')) =>
                {
                    map_idents.push(t.text.as_str());
                }
                Some(n)
                    if n.kind == TokenKind::NumLit
                        && (n.text.contains('.')
                            || n.text.ends_with("f64")
                            || n.text.ends_with("f32")) =>
                {
                    float_idents.push(t.text.as_str());
                }
                _ => {}
            }
        }
        // `name.sort…(…)` anywhere absolves later pushes into `name`.
        if matches!(toks.get(i + 1), Some(p) if p.is_punct('.'))
            && matches!(toks.get(i + 2), Some(m) if m.kind == TokenKind::Ident
                && m.text.starts_with("sort"))
        {
            sorted_idents.push(t.text.as_str());
        }
    }
    if map_idents.is_empty() {
        return;
    }

    // Pass 2: `for` loops whose header iterates a map identifier.
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("for") || !ctx.is_prod(i) {
            i += 1;
            continue;
        }
        // `impl Trait for Type` / HRTB `for<'a>`: not loops.
        if i > 0 && (toks[i - 1].kind == TokenKind::Ident || toks[i - 1].is_punct('>')) {
            i += 1;
            continue;
        }
        if matches!(toks.get(i + 1), Some(p) if p.is_punct('<')) {
            i += 1;
            continue;
        }
        // Locate `in` at bracket depth 0, then the body `{`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut in_pos = None;
        while j < toks.len() && j < i + 60 {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_ident("in") {
                in_pos = Some(j);
                break;
            }
            j += 1;
        }
        let Some(in_pos) = in_pos else {
            i += 1;
            continue;
        };
        let mut depth = 0usize;
        let mut k = in_pos + 1;
        let mut brace = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct('{') {
                brace = Some(k);
                break;
            }
            k += 1;
        }
        let Some(brace) = brace else {
            i += 1;
            continue;
        };

        // Does the header iterate a tracked map?
        let header = &toks[in_pos + 1..brace];
        let mut iterated: Option<&str> = None;
        for (h, t) in header.iter().enumerate() {
            if t.kind != TokenKind::Ident || !map_idents.contains(&t.text.as_str()) {
                continue;
            }
            let via_method = matches!(header.get(h + 1), Some(p) if p.is_punct('.'))
                && matches!(header.get(h + 2), Some(m) if MAP_ITER_METHODS
                    .iter()
                    .any(|im| m.is_ident(im)));
            // `for x in &map` / `for x in map`: header is only the map
            // ident plus reference sigils.
            let bare = header.iter().all(|u| {
                u.is_punct('&')
                    || u.is_ident("mut")
                    || (u.kind == TokenKind::Ident && u.text == t.text)
            });
            if via_method || bare {
                iterated = Some(t.text.as_str());
                break;
            }
        }
        let Some(map_name) = iterated else {
            i = brace + 1;
            continue;
        };

        // Scan the body for ordered sinks.
        let mut depth = 1usize;
        let mut b = brace + 1;
        let mut sink: Option<(u32, String)> = None;
        while b < toks.len() && depth > 0 {
            let t = &toks[b];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
            } else if ctx.is_prod(b) && t.kind == TokenKind::Ident && sink.is_none() {
                // `x.push(` with `x` never sorted.
                if matches!(toks.get(b + 1), Some(p) if p.is_punct('.'))
                    && matches!(toks.get(b + 2), Some(m) if m.is_ident("push"))
                    && matches!(toks.get(b + 3), Some(p) if p.is_punct('('))
                    && !sorted_idents.contains(&t.text.as_str())
                {
                    sink = Some((t.line, format!("`{}.push(…)` (never sorted)", t.text)));
                }
                // JSON writer `.key(` / `.push_str(`.
                if (t.is_ident("key") || t.is_ident("push_str"))
                    && b > 0
                    && toks[b - 1].is_punct('.')
                    && matches!(toks.get(b + 1), Some(p) if p.is_punct('('))
                {
                    sink = Some((t.line, format!("`.{}(…)`", t.text)));
                }
                // `write!`/`writeln!`.
                if (t.is_ident("write") || t.is_ident("writeln"))
                    && matches!(toks.get(b + 1), Some(p) if p.is_punct('!'))
                {
                    sink = Some((t.line, format!("`{}!`", t.text)));
                }
                // Float accumulation `acc += …`.
                if float_idents.contains(&t.text.as_str())
                    && matches!(toks.get(b + 1), Some(p) if p.is_punct('+'))
                    && matches!(toks.get(b + 2), Some(p) if p.is_punct('='))
                {
                    sink = Some((t.line, format!("float accumulator `{} += …`", t.text)));
                }
            }
            b += 1;
        }
        if let Some((_, what)) = sink {
            ctx.emit(
                out,
                "R10",
                toks[i].line,
                format!(
                    "loop iterates hash map `{map_name}` and feeds {what}, an order-sensitive \
                     sink; hash iteration order varies — collect and sort before the loop, or \
                     use an order-independent reduction"
                ),
            );
        }
        i = brace + 1;
    }
}

/// Integer types a cast *into* can lose bits or sign.
const NARROW_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// R11 — narrowing `as` casts in parsing/deserialization modules.
fn rule_checked_narrowing(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if !ctx.config.narrow_cast_paths.iter().any(|p| ctx.meta.path.starts_with(p.as_str())) {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if !ctx.is_prod(i) || !toks[i].is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else { continue };
        if NARROW_TARGETS.iter().any(|n| target.is_ident(n)) {
            ctx.emit(
                out,
                "R11",
                toks[i].line,
                format!(
                    "`as {}` silently truncates out-of-range values; this file parses external \
                     data, so use {}::try_from / From and surface a typed error \
                     (FieldTooLarge-style) instead",
                    target.text, target.text
                ),
            );
        }
    }
}

/// Lock type names banned from hot crates (R12c).
const LOCK_TYPES: [&str; 3] = ["Mutex", "RwLock", "Condvar"];

/// R12 — concurrency hygiene: unbounded channels, non-`Send` interior
/// mutability in device state, locks on hot paths.
fn rule_concurrency_hygiene(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    if !ctx.first_party_prod() {
        return;
    }
    let toks = ctx.tokens;
    let send_state = ctx.config.send_state_crates.contains(&ctx.meta.crate_name);
    let hot = ctx.config.hot_crates.contains(&ctx.meta.crate_name)
        && !ctx.config.lock_allow.iter().any(|p| ctx.meta.path.starts_with(p.as_str()));
    for i in 0..toks.len() {
        if !ctx.is_prod(i) {
            continue;
        }
        let t = &toks[i];
        // (a) Unbounded channels — everywhere in first-party prod code.
        let mpsc_channel = t.is_ident("mpsc")
            && matches!(toks.get(i + 1), Some(p) if p.is_punct(':'))
            && matches!(toks.get(i + 2), Some(p) if p.is_punct(':'))
            && matches!(toks.get(i + 3), Some(n) if n.is_ident("channel"));
        let unbounded_call = (t.is_ident("unbounded") || t.is_ident("unbounded_channel"))
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('('));
        if mpsc_channel || unbounded_call {
            ctx.emit(
                out,
                "R12",
                t.line,
                "unbounded channel: under load this is an OOM with extra steps — use a \
                 bounded channel (sync_channel) sized like the serve mailbox"
                    .to_string(),
            );
            continue;
        }
        // (b) `Rc`/`RefCell` in crates whose device state must be Send.
        if send_state && (t.is_ident("Rc") || t.is_ident("RefCell")) {
            ctx.emit(
                out,
                "R12",
                t.line,
                format!(
                    "{} is !Send (or hides aliasing) — served device state migrates across \
                     worker threads; use owned state or Arc with explicit sharing",
                    t.text
                ),
            );
            continue;
        }
        // (c) Locks in hot crates outside the allowlist.
        if hot && LOCK_TYPES.iter().any(|l| t.is_ident(l)) {
            ctx.emit(
                out,
                "R12",
                t.line,
                format!(
                    "{} on a hot-path crate serializes the sharded parallelism; keep per-shard \
                     state owned and merge deterministically (or add the reviewed site to \
                     lock_allow)",
                    t.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(path: &str) -> FileMeta {
        FileMeta::for_path(path).expect("classifiable path")
    }

    fn cfg() -> Config {
        Config {
            crate_idents: ["planaria_common", "planaria_hash", "rand", "serde"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            ..Config::default()
        }
    }

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        let mut ids: Vec<&'static str> =
            lint_source(&meta(path), src, &cfg()).into_iter().map(|v| v.rule).collect();
        ids.dedup();
        ids
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "
            pub fn prod() {}
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { let m: HashMap<u64, u64> = HashMap::new(); m.len(); }
            }
        ";
        assert!(rules_fired("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn hot_crate_hashmap_fires_outside_tests() {
        let src =
            "use std::collections::HashMap;\npub fn f() -> HashMap<u64, u64> { HashMap::new() }\n";
        assert_eq!(rules_fired("crates/cache/src/x.rs", src), ["R1"]);
        // Same file in a non-hot crate: only the import rule is clean too.
        assert!(rules_fired("crates/telemetry/src/x.rs", src).is_empty());
    }

    #[test]
    fn approved_hot_path_containers_do_not_fire() {
        // The planaria_hash containers are the sanctioned replacements:
        // FastHashMap/FastHashSet for general maps, FixedIndex for the
        // fixed-capacity open-addressed page→slot tables on the SLP/TLP
        // per-access paths. None of them may trip R1 in a hot crate.
        let src = "
            use planaria_hash::{FastHashMap, FastHashSet, FixedIndex};
            pub fn f() -> (FastHashMap<u64, u64>, FastHashSet<u64>, FixedIndex) {
                (FastHashMap::default(), FastHashSet::default(), FixedIndex::with_capacity(128))
            }
        ";
        assert!(rules_fired("crates/core/src/x.rs", src).is_empty());
        assert!(rules_fired("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn manifest_registry_dep_is_flagged() {
        let bad = "[dependencies]\nserde = \"1.0\"\nrand = { path = \"../rand\" }\n";
        let v = lint_manifest("crates/x/Cargo.toml", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        let good = "[dependencies]\nrand = { workspace = true }\n\n[dev-dependencies]\nproptest = { path = \"../../vendor/proptest\" }\n";
        assert!(lint_manifest("crates/x/Cargo.toml", good).is_empty());
    }

    #[test]
    fn manifest_git_dep_is_flagged() {
        let bad = "[dependencies]\nfoo = { git = \"https://example.com/foo\" }\n";
        assert_eq!(lint_manifest("crates/x/Cargo.toml", bad).len(), 1);
    }
}
