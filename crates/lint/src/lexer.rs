//! A lightweight Rust lexer for static-analysis rules.
//!
//! Full parsing (`syn`) would need a registry dependency, which the
//! workspace's no-registry vendoring policy rules out — and the lint rules
//! only need token-level structure anyway. This lexer handles exactly the
//! constructs that make naive text search wrong:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals: plain, raw (`r"…"`, `r#"…"#`), byte (`b"…"`,
//!   `br#"…"#`) — including escapes and embedded newlines;
//! * char literals vs. lifetimes (`'a'` vs. `'a`);
//! * raw identifiers (`r#match`).
//!
//! Rule code therefore sees `HashMap` **as an identifier token** only when
//! the source really names the type, never when the word occurs inside a
//! comment, a doc comment or a string literal.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`use`, `HashMap`, `r#match` → `match`).
    Ident,
    /// A string literal of any flavor; `text` holds the raw inner bytes.
    StrLit,
    /// A character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// A numeric literal, including suffix (`0x1f`, `1_000`, `2.5e-3f64`).
    NumLit,
    /// A lifetime (`'a`, `'static`); `text` holds the name without `'`.
    Lifetime,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token payload (see [`TokenKind`] for what each class stores).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this is an identifier with exactly the text `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// Lexes `source` into tokens, discarding comments and whitespace.
///
/// The lexer never fails: malformed trailing input (e.g. an unterminated
/// string at EOF) simply ends the token stream, which is the right
/// behavior for linting — the compiler, not the linter, owns syntax
/// errors.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer { chars: source.chars().collect(), pos: 0, line: 1 }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '\'' => self.char_or_lifetime(&mut out),
                '"' => {
                    let line = self.line;
                    self.bump();
                    let text = self.plain_string();
                    out.push(Token { kind: TokenKind::StrLit, text, line });
                }
                c if c.is_ascii_digit() => self.number(&mut out),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(&mut out),
                c => {
                    let line = self.line;
                    self.bump();
                    out.push(Token { kind: TokenKind::Punct, text: c.to_string(), line });
                }
            }
        }
        out
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// `'a'` / `'\n'` are char literals; `'a` / `'static` are lifetimes.
    fn char_or_lifetime(&mut self, out: &mut Vec<Token>) {
        let line = self.line;
        self.bump(); // opening '
        match self.peek(0) {
            // Escape → definitely a char literal.
            Some('\\') => {
                let text = self.char_literal_body();
                out.push(Token { kind: TokenKind::CharLit, text, line });
            }
            // Identifier-looking start: lifetime unless a quote follows
            // the single character ('x' is a char, 'xy is a lifetime).
            Some(c) if c == '_' || c.is_alphanumeric() => {
                if self.peek(1) == Some('\'') {
                    let text = self.char_literal_body();
                    out.push(Token { kind: TokenKind::CharLit, text, line });
                } else {
                    let mut name = String::new();
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            name.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    out.push(Token { kind: TokenKind::Lifetime, text: name, line });
                }
            }
            // Punctuation char literal like '{' or '"'.
            Some(_) => {
                let text = self.char_literal_body();
                out.push(Token { kind: TokenKind::CharLit, text, line });
            }
            None => {}
        }
    }

    /// Consumes a char-literal body up to and including the closing quote.
    fn char_literal_body(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '\'' => break,
                c => text.push(c),
            }
        }
        text
    }

    /// Consumes a plain (escaped) string body; opening quote already eaten.
    fn plain_string(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                c => text.push(c),
            }
        }
        text
    }

    /// Consumes a raw string `r#…#"…"#…#`; caller ate the `r`/`br` prefix.
    fn raw_string(&mut self) -> String {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A quote closes only when followed by `hashes` hashes.
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        text.push(c);
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        text
    }

    fn number(&mut self, out: &mut Vec<Token>) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `0..10` does not.
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(text.chars().last(), Some('e' | 'E'))
                && !text.starts_with("0x")
                && !text.starts_with("0X")
                && !text.starts_with("0b")
                && !text.starts_with("0o")
            {
                // Exponent sign inside a float like `2.5e-3` or `1e-3`
                // (but not the `+` of a hex expression like `0x1e+2`).
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        out.push(Token { kind: TokenKind::NumLit, text, line });
    }

    fn ident_or_prefixed(&mut self, out: &mut Vec<Token>) {
        let line = self.line;
        // String-literal prefixes: r" r#" b" br" b' and raw idents r#name.
        match (self.peek(0), self.peek(1), self.peek(2)) {
            (Some('r'), Some('"' | '#'), _) => {
                // `r#ident` (raw identifier) vs `r#"…"#` / `r"…"`.
                let mut ahead = 1;
                while self.peek(ahead) == Some('#') {
                    ahead += 1;
                }
                if self.peek(ahead) == Some('"') {
                    self.bump(); // r
                    let text = self.raw_string();
                    out.push(Token { kind: TokenKind::StrLit, text, line });
                    return;
                }
                if self.peek(1) == Some('#') {
                    self.bump(); // r
                    self.bump(); // #
                    self.plain_ident(out, line);
                    return;
                }
                self.plain_ident(out, line);
            }
            (Some('b'), Some('"'), _) => {
                self.bump(); // b
                self.bump(); // "
                let text = self.plain_string();
                out.push(Token { kind: TokenKind::StrLit, text, line });
            }
            (Some('b'), Some('\''), _) => {
                self.bump(); // b
                self.bump(); // '
                let text = self.char_literal_body();
                out.push(Token { kind: TokenKind::CharLit, text, line });
            }
            (Some('b'), Some('r'), Some('"' | '#')) => {
                self.bump(); // b
                self.bump(); // r
                let text = self.raw_string();
                out.push(Token { kind: TokenKind::StrLit, text, line });
            }
            _ => self.plain_ident(out, line),
        }
    }

    fn plain_ident(&mut self, out: &mut Vec<Token>, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        out.push(Token { kind: TokenKind::Ident, text, line });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in /* a nested */ block comment */
            let s = "HashMap::new() in a string";
            let r = r#"Instant::now() in a raw string"#;
            let real = Vec::new();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert!(ids.contains(&"Vec".to_string()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Lifetime).map(|t| &t.text).collect();
        let chars: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::CharLit).map(|t| &t.text).collect();
        assert_eq!(lifetimes, ["a", "a"]);
        assert_eq!(chars, ["x", "\\'"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.is_ident("b")).expect("ident b");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn raw_identifier_is_lexed_as_ident() {
        let toks = lex("let r#match = 1;");
        assert!(toks.iter().any(|t| t.is_ident("match")));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("for i in 0..10 { let f = 2.5e-3; }");
        let nums: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::NumLit).map(|t| &t.text).collect();
        assert_eq!(nums, ["0", "10", "2.5e-3"]);
    }
}
