//! Workspace call-graph approximation and the R9 wall-clock taint pass.
//!
//! The item tree ([`crate::syntax`]) says where every function lives; this
//! module stitches those functions into a workspace-level graph and walks
//! it backwards from every direct wall-clock read. R2 already flags the
//! read *site*; R9 flags every function that *reaches* one through calls —
//! the failure mode token rules cannot see (a helper buried two crates
//! down deciding to timestamp something).
//!
//! # Name resolution approximation
//!
//! There is no type information, so calls resolve by name with a small
//! amount of path context:
//!
//! * `helper(…)` and `.helper(…)` resolve to every same-crate function
//!   named `helper`;
//! * `Type::helper(…)` prefers same-crate functions in an `impl Type`
//!   block, falling back to name-only;
//! * `planaria_x::…::helper(…)` (any known crate identifier) resolves
//!   into that crate; `crate::`/`self::`/`super::` stay in the current
//!   crate; `std::`/`core::`/`alloc::` paths produce no edge.
//!
//! Over-approximate edges are acceptable: an extra edge can only matter if
//! its callee is wall-clock tainted, and the workspace keeps direct
//! reads confined to the allowlist (enforced by R2). Known *false
//! negatives* — calls the graph cannot see — are function pointers /
//! closures passed as values, trait-object dispatch, and macro-generated
//! calls; DESIGN.md §11 documents each.
//!
//! # Barrier semantics
//!
//! Files on the `nondet_allow` list (the runner, bench harnesses, CLI
//! bins) are the *sanctioned* timing layer. Their functions neither get
//! reported nor propagate taint — calling `Runner::run` does not make a
//! caller "reach a wall clock", because the allowlist entry is precisely
//! the reviewed decision that timing stops there.

use crate::lexer::{Token, TokenKind};
use crate::rules::{wall_clock_at, Config, FileMeta, Origin, Violation};
use crate::syntax::{ItemKind, ItemTree};

/// One source file lifted to the representation the graph passes need:
/// classification, token stream and item tree.
#[derive(Debug, Clone)]
pub struct FileIr {
    /// File classification.
    pub meta: FileMeta,
    /// Lexed token stream.
    pub tokens: Vec<Token>,
    /// Parsed item tree over `tokens`.
    pub tree: ItemTree,
    /// Per-token `#[cfg(test)]` region markers.
    pub in_test: Vec<bool>,
    /// Source lines (for violation snippets).
    pub lines: Vec<String>,
}

impl FileIr {
    /// Builds the IR for one classified source file.
    pub fn build(meta: FileMeta, source: &str) -> FileIr {
        let tokens = crate::lexer::lex(source);
        let tree = ItemTree::parse(&tokens);
        let in_test = crate::rules::test_regions(&tokens);
        let lines = source.lines().map(str::to_string).collect();
        FileIr { meta, tokens, tree, in_test, lines }
    }
}

/// One function node of the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the owning file in the input slice.
    pub file: usize,
    /// Owning crate directory name (`FileMeta::crate_name`).
    pub crate_name: String,
    /// Function name (raw-ident prefix stripped by the lexer).
    pub name: String,
    /// Self-type head of the owning `impl`/`trait` block, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token range in the owning file, exclusive of braces.
    pub body: Option<(usize, usize)>,
    /// Body sub-ranges owned by nested items (their tokens belong to the
    /// nested function's node, not this one).
    pub holes: Vec<(usize, usize)>,
    /// Test-gated (`#[cfg(test)]` region or test file).
    pub is_test: bool,
    /// File is on the `nondet_allow` list — a taint barrier.
    pub allowlisted: bool,
    /// File is first-party production code (where R9 reports).
    pub first_party: bool,
}

/// The workspace call graph: nodes, edges and the R9 taint results.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All function nodes, in (file, source) order.
    pub nodes: Vec<FnNode>,
    /// Resolved call edges as `(caller, callee)` node indices, deduplicated.
    pub edges: Vec<(usize, usize)>,
}

impl CallGraph {
    /// Builds the graph over every file and resolves call edges.
    pub fn build(files: &[FileIr], config: &Config) -> CallGraph {
        let nodes = collect_nodes(files, config);

        // Lookup tables (insert + point lookups only — iteration order of
        // a hash map must never influence output, per this linter's own
        // R10). `by_name` keys function names; `crate_of_ident` maps path
        // roots like `planaria_serve` back to crate directory names.
        let mut by_name: std::collections::HashMap<&str, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(n.name.as_str()).or_default().push(i);
        }
        let mut crate_of_ident: std::collections::HashMap<String, String> =
            std::collections::HashMap::new();
        for n in &nodes {
            let underscored = n.crate_name.replace('-', "_");
            crate_of_ident.insert(underscored.clone(), n.crate_name.clone());
            crate_of_ident.insert(format!("planaria_{underscored}"), n.crate_name.clone());
        }

        let mut edges = Vec::new();
        for (caller, node) in nodes.iter().enumerate() {
            let Some((lo, hi)) = node.body else { continue };
            let toks = &files[node.file].tokens;
            let mut i = lo;
            while i < hi {
                if let Some(hole) = node.holes.iter().find(|(hlo, hhi)| *hlo <= i && i < *hhi) {
                    i = hole.1;
                    continue;
                }
                if let Some(call) = call_site(toks, i, lo) {
                    for callee in resolve(&call, node, &nodes, &by_name, &crate_of_ident) {
                        if callee != caller {
                            edges.push((caller, callee));
                        }
                    }
                }
                i += 1;
            }
        }
        edges.sort_unstable();
        edges.dedup();
        CallGraph { nodes, edges }
    }

    /// Runs the R9 taint pass: finds every function whose body directly
    /// reads a wall clock (outside the allowlist), propagates taint to
    /// callers — stopping at allowlist barriers — and reports the
    /// *indirectly* tainted functions (direct sites are R2's to report).
    pub fn wall_clock_taint(&self, files: &[FileIr]) -> Vec<Violation> {
        let n = self.nodes.len();
        // What each directly-tainted node reaches, e.g. "Instant::now".
        let mut direct: Vec<Option<String>> = vec![None; n];
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.allowlisted || node.is_test || !node.first_party {
                continue;
            }
            let Some((lo, hi)) = node.body else { continue };
            let toks = &files[node.file].tokens;
            let mut i = lo;
            while i < hi {
                if let Some(hole) = node.holes.iter().find(|(hlo, hhi)| *hlo <= i && i < *hhi) {
                    i = hole.1;
                    continue;
                }
                if let Some(what) = wall_clock_at(toks, i) {
                    direct[idx] = Some(what);
                    break;
                }
                i += 1;
            }
        }

        // Reverse adjacency: callee -> callers.
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(caller, callee) in &self.edges {
            callers[callee].push(caller);
        }

        // BFS backwards from direct sites; `via[x]` remembers the callee
        // that tainted x, giving the report its call chain.
        let mut via: Vec<Option<usize>> = vec![None; n];
        let mut tainted = vec![false; n];
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| direct[i].is_some()).collect();
        while let Some(x) = queue.pop_front() {
            for &caller in &callers[x] {
                let c = &self.nodes[caller];
                if tainted[caller] || direct[caller].is_some() || c.allowlisted || c.is_test {
                    continue;
                }
                tainted[caller] = true;
                via[caller] = Some(x);
                queue.push_back(caller);
            }
        }

        let mut out = Vec::new();
        for (idx, node) in self.nodes.iter().enumerate() {
            if !tainted[idx] || !node.first_party {
                continue;
            }
            // Reconstruct the chain down to the direct site.
            let mut chain = Vec::new();
            let mut cur = idx;
            let what = loop {
                match via[cur] {
                    Some(next) => {
                        chain.push(self.nodes[next].name.clone());
                        cur = next;
                    }
                    None => break direct[cur].clone().unwrap_or_default(),
                }
            };
            let path = chain.iter().map(|s| format!("`{s}`")).collect::<Vec<_>>().join(" → ");
            let file_ir = &files[node.file];
            let snippet = file_ir
                .lines
                .get(node.line as usize - 1)
                .map(|l| crate::rules::snippet_of(l))
                .unwrap_or_default();
            out.push(Violation {
                rule: "R9",
                file: node.crate_file(files),
                line: node.line,
                snippet,
                message: format!(
                    "fn `{}` transitively reaches {what} via {path}; simulated code must be a \
                     pure function of its inputs — route timing through the allowlisted \
                     runner/bench layer or pass timestamps in as data",
                    node.name
                ),
            });
        }
        out
    }
}

impl FnNode {
    fn crate_file(&self, files: &[FileIr]) -> String {
        files[self.file].meta.path.clone()
    }
}

/// A call site: the called name plus its leading path segments.
struct CallSite {
    /// Path segments before the name (`planaria_sim`, `Runner`, …).
    path: Vec<String>,
    /// Called function name.
    name: String,
    /// True for `.name(…)` method syntax.
    method: bool,
}

/// Keywords and tuple-struct constructors that look like `ident (` but are
/// not function calls worth an edge.
const NON_CALLS: [&str; 22] = [
    "if", "while", "match", "return", "for", "in", "loop", "move", "as", "fn", "let", "else",
    "break", "continue", "where", "impl", "dyn", "ref", "mut", "Some", "Ok", "Err",
];

/// Recognises a call site at token `i` (an identifier directly followed by
/// `(`), collecting any `::`-path prefix back to `lo`.
fn call_site(toks: &[Token], i: usize, lo: usize) -> Option<CallSite> {
    let t = toks.get(i)?;
    if t.kind != TokenKind::Ident || !toks.get(i + 1).is_some_and(|p| p.is_punct('(')) {
        return None;
    }
    if NON_CALLS.contains(&t.text.as_str()) {
        return None;
    }
    // `fn name(` is a definition, not a call.
    if i > lo && toks[i - 1].is_ident("fn") {
        return None;
    }
    if i > lo && toks[i - 1].is_punct('.') {
        return Some(CallSite { path: Vec::new(), name: t.text.clone(), method: true });
    }
    // Walk `seg :: seg :: name` backwards.
    let mut path = Vec::new();
    let mut j = i;
    while j >= lo + 3
        && toks[j - 1].is_punct(':')
        && toks[j - 2].is_punct(':')
        && toks[j - 3].kind == TokenKind::Ident
    {
        path.push(toks[j - 3].text.clone());
        j -= 3;
    }
    path.reverse();
    Some(CallSite { path, name: t.text.clone(), method: false })
}

/// Resolves one call site to node indices (possibly several — resolution
/// is name-based and deliberately over-approximate).
fn resolve(
    call: &CallSite,
    from: &FnNode,
    nodes: &[FnNode],
    by_name: &std::collections::HashMap<&str, Vec<usize>>,
    crate_of_ident: &std::collections::HashMap<String, String>,
) -> Vec<usize> {
    let Some(candidates) = by_name.get(call.name.as_str()) else { return Vec::new() };

    // Which crate does the path root us in?
    let target_crate: Option<&str> = match call.path.first().map(String::as_str) {
        None => Some(from.crate_name.as_str()),
        Some("crate" | "self" | "super") => Some(from.crate_name.as_str()),
        Some("std" | "core" | "alloc") => None, // external — no edge
        Some(root) => match crate_of_ident.get(root) {
            Some(dir) => Some(dir.as_str()),
            // Unknown root: a local module or type — stay in-crate.
            None => Some(from.crate_name.as_str()),
        },
    };
    let Some(target_crate) = target_crate else { return Vec::new() };

    let in_crate: Vec<usize> =
        candidates.iter().copied().filter(|&i| nodes[i].crate_name == target_crate).collect();
    if in_crate.is_empty() {
        return in_crate;
    }

    // `Type::name(…)`: prefer matching impl blocks when the second-to-last
    // segment is capitalized (a type name by convention).
    if !call.method {
        if let Some(qualifier) = call.path.last() {
            if qualifier.chars().next().is_some_and(char::is_uppercase) {
                let typed: Vec<usize> = in_crate
                    .iter()
                    .copied()
                    .filter(|&i| nodes[i].impl_type.as_deref() == Some(qualifier.as_str()))
                    .collect();
                if !typed.is_empty() {
                    return typed;
                }
            }
        }
    }
    in_crate
}

/// Flattens every file's item tree into graph nodes.
fn collect_nodes(files: &[FileIr], config: &Config) -> Vec<FnNode> {
    let mut nodes = Vec::new();
    for (file_idx, ir) in files.iter().enumerate() {
        let allowlisted = config.nondet_allow.iter().any(|p| ir.meta.path.starts_with(p.as_str()));
        let first_party = matches!(ir.meta.origin, Origin::FirstParty | Origin::Examples)
            && !ir.meta.is_test_file;
        for f in ir.tree.fns() {
            let item = f.item;
            if item.kind != ItemKind::Fn {
                continue;
            }
            let holes = item.children.iter().filter_map(|c| c.body).collect();
            // A fn is test code when its item is cfg(test)-gated, the file
            // is a test file, or its first body token falls in a marked
            // test region (belt and braces with `test_regions`).
            let in_marked_region = item
                .body
                .map(|(lo, _)| ir.in_test.get(lo).copied().unwrap_or(false))
                .unwrap_or(false);
            nodes.push(FnNode {
                file: file_idx,
                crate_name: ir.meta.crate_name.clone(),
                name: item.name.clone(),
                impl_type: f.impl_type.map(str::to_string),
                line: item.line,
                body: item.body,
                holes,
                is_test: item.cfg_test || ir.meta.is_test_file || in_marked_region,
                allowlisted,
                first_party,
            });
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileMeta;

    fn ir(path: &str, src: &str) -> FileIr {
        FileIr::build(FileMeta::for_path(path).expect("classifiable"), src)
    }

    #[test]
    fn bare_calls_resolve_within_the_crate() {
        let files = [ir("crates/core/src/a.rs", "pub fn leaf() {}\npub fn root() { leaf(); }\n")];
        let g = CallGraph::build(&files, &Config::default());
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.edges, [(1, 0)]);
    }

    #[test]
    fn cross_crate_edges_need_a_known_crate_root() {
        let files = [
            ir("crates/core/src/a.rs", "pub fn helper() {}\n"),
            ir(
                "crates/sim/src/b.rs",
                "pub fn caller() { planaria_core::helper(); }\n\
                 pub fn no_edge() { std::mem::drop(1); }\n",
            ),
        ];
        let g = CallGraph::build(&files, &Config::default());
        let helper = g.nodes.iter().position(|n| n.name == "helper").unwrap();
        let caller = g.nodes.iter().position(|n| n.name == "caller").unwrap();
        assert!(g.edges.contains(&(caller, helper)));
        assert_eq!(g.edges.len(), 1, "std:: paths must not resolve: {:?}", g.edges);
    }

    #[test]
    fn type_qualified_calls_prefer_the_matching_impl() {
        let files = [ir(
            "crates/core/src/a.rs",
            "pub struct A;\npub struct B;\n\
             impl A { pub fn make() -> A { A } }\n\
             impl B { pub fn make() -> B { B } }\n\
             pub fn build_a() { A::make(); }\n",
        )];
        let g = CallGraph::build(&files, &Config::default());
        let build_a = g.nodes.iter().position(|n| n.name == "build_a").unwrap();
        let callees: Vec<&str> = g
            .edges
            .iter()
            .filter(|(c, _)| *c == build_a)
            .map(|&(_, e)| g.nodes[e].impl_type.as_deref().unwrap_or("?"))
            .collect();
        assert_eq!(callees, ["A"], "only impl A's make() may be the callee");
    }

    #[test]
    fn nested_fn_bodies_are_holes_in_the_parent() {
        // `inner` owns the wall-clock read; `outer` merely declares it and
        // never calls it, so outer must NOT be directly tainted.
        let files = [ir(
            "crates/core/src/a.rs",
            "pub fn outer() {\n    fn inner() { let _ = std::time::Instant::now(); }\n}\n",
        )];
        let g = CallGraph::build(&files, &Config::default());
        let vs = g.wall_clock_taint(&files);
        assert!(vs.is_empty(), "declaring a fn is not calling it: {vs:?}");
    }

    #[test]
    fn transitive_taint_crosses_files_and_reports_the_chain() {
        let files = [
            ir(
                "crates/trace/src/deep.rs",
                "pub fn stamp() -> u64 { let _ = std::time::Instant::now(); 0 }\n",
            ),
            ir("crates/trace/src/mid.rs", "pub fn relay() -> u64 { crate::stamp() }\n"),
            ir("crates/sim/src/top.rs", "pub fn driver() { planaria_trace::relay(); }\n"),
        ];
        let g = CallGraph::build(&files, &Config::default());
        let vs = g.wall_clock_taint(&files);
        let names: Vec<String> =
            vs.iter().map(|v| v.message.split('`').nth(1).unwrap_or("").to_string()).collect();
        assert_eq!(names, ["relay", "driver"], "violations: {vs:?}");
        let driver = vs.iter().find(|v| v.message.contains("`driver`")).unwrap();
        assert!(
            driver.message.contains("`relay`") && driver.message.contains("Instant::now"),
            "chain must name the route: {}",
            driver.message
        );
        assert!(vs.iter().all(|v| v.rule == "R9"));
    }

    #[test]
    fn allowlisted_files_are_taint_barriers() {
        // runner.rs is on the default allowlist: its direct read is fine,
        // and callers of its fns stay clean — timing stops at the barrier.
        let files = [
            ir(
                "crates/sim/src/runner.rs",
                "pub fn timed_cell() -> u64 { let _ = std::time::Instant::now(); 0 }\n",
            ),
            ir("crates/sim/src/grid.rs", "pub fn sweep() { crate::timed_cell(); }\n"),
        ];
        let g = CallGraph::build(&files, &Config::default());
        let vs = g.wall_clock_taint(&files);
        assert!(vs.is_empty(), "allowlisted timing layer must not propagate: {vs:?}");
    }

    #[test]
    fn test_functions_are_exempt() {
        let files = [ir(
            "crates/core/src/a.rs",
            "pub fn stamp() { let _ = std::time::SystemTime::now(); }\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { crate::stamp(); }\n}\n",
        )];
        let g = CallGraph::build(&files, &Config::default());
        let vs = g.wall_clock_taint(&files);
        // `stamp` is a *direct* site — R2's report, not R9's. The test fn
        // calling it is exempt. So R9 stays silent here.
        assert!(vs.is_empty(), "{vs:?}");
    }
}
