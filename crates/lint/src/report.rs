//! The `planaria-lint-v2` report schema.
//!
//! Like the perf and contention schemas, the report has a fixed key order
//! and is emitted through [`planaria_common::json`], so equal lint
//! outcomes serialize to byte-identical documents.
//!
//! v2 extends v1 with an `"analysis"` object carrying the structural
//! pass's call-graph size (`functions`, `call_edges`) — the number CI
//! watches so analyzer-cost regressions are visible — and grows the
//! per-rule summary array to the twelve-rule set.

use planaria_common::json::{self, Value, Writer};

use crate::baseline::BaselineEntry;
use crate::rules::{Violation, RULES};

/// Schema identifier of the report document.
pub const REPORT_SCHEMA: &str = "planaria-lint-v2";

/// The complete outcome of one lint run.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// Rust files + manifests scanned.
    pub files_scanned: usize,
    /// Function nodes in the workspace call graph.
    pub functions: usize,
    /// Resolved call edges in the workspace call graph.
    pub call_edges: usize,
    /// Violations not covered by the baseline, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Violations covered by a baseline entry, same order.
    pub suppressed: Vec<Violation>,
    /// Baseline entries that matched nothing (they must be deleted).
    pub stale_entries: Vec<BaselineEntry>,
}

impl Outcome {
    /// True when `--check` should exit zero: nothing unsuppressed and no
    /// stale baseline entries.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale_entries.is_empty()
    }

    /// Renders the `planaria-lint-v2` JSON document.
    pub fn render(&self, root_label: &str) -> String {
        let mut w = Writer::pretty();
        w.begin_object();
        w.key("schema");
        w.string(REPORT_SCHEMA);
        w.key("root");
        w.string(root_label);
        w.key("files_scanned");
        w.u64(self.files_scanned as u64);
        w.key("analysis");
        w.begin_inline_object();
        w.key("functions");
        w.u64(self.functions as u64);
        w.key("call_edges");
        w.u64(self.call_edges as u64);
        w.end_object();
        w.key("clean");
        w.bool(self.is_clean());

        w.key("rules");
        w.begin_array();
        for rule in RULES {
            let count = self.violations.iter().filter(|v| v.rule == rule.id).count();
            w.begin_inline_object();
            w.key("id");
            w.string(rule.id);
            w.key("name");
            w.string(rule.name);
            w.key("violations");
            w.u64(count as u64);
            w.end_object();
        }
        w.end_array();

        w.key("violations");
        w.begin_array();
        for v in &self.violations {
            write_violation(&mut w, v);
        }
        w.end_array();

        w.key("suppressed");
        w.begin_array();
        for v in &self.suppressed {
            write_violation(&mut w, v);
        }
        w.end_array();

        w.key("baseline_stale");
        w.begin_array();
        for e in &self.stale_entries {
            w.begin_inline_object();
            w.key("rule");
            w.string(&e.rule);
            w.key("file");
            w.string(&e.file);
            w.key("pattern");
            w.string(&e.pattern);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Human-readable console rendering (stderr companion of the JSON).
    pub fn render_text(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
            let _ = writeln!(out, "    {}", v.snippet);
        }
        let _ = writeln!(
            out,
            "planaria-lint: {} violation(s), {} suppressed by baseline, {} stale baseline \
             entr(ies), {} file(s) scanned, call graph {} fn(s) / {} edge(s)",
            self.violations.len(),
            self.suppressed.len(),
            self.stale_entries.len(),
            self.files_scanned,
            self.functions,
            self.call_edges
        );
        out
    }
}

fn write_violation(w: &mut Writer, v: &Violation) {
    w.begin_inline_object();
    w.key("rule");
    w.string(v.rule);
    w.key("file");
    w.string(&v.file);
    w.key("line");
    w.u64(v.line as u64);
    w.key("snippet");
    w.string(&v.snippet);
    w.key("message");
    w.string(&v.message);
    w.end_object();
}

/// Validates a written `planaria-lint-v2` report document.
///
/// # Errors
///
/// Reports malformed JSON, a wrong schema id, missing top-level keys or
/// a malformed `"analysis"` object.
pub fn validate_report(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    match doc.get("schema").and_then(Value::as_str) {
        Some(REPORT_SCHEMA) => {}
        other => return Err(format!("schema must be {REPORT_SCHEMA:?}, found {other:?}")),
    }
    for key in [
        "root",
        "files_scanned",
        "analysis",
        "clean",
        "rules",
        "violations",
        "suppressed",
        "baseline_stale",
    ] {
        if doc.get(key).is_none() {
            return Err(format!("missing top-level key {key:?}"));
        }
    }
    let analysis = doc.get("analysis").ok_or("missing \"analysis\"")?;
    for key in ["functions", "call_edges"] {
        if analysis.get(key).and_then(Value::as_f64).is_none() {
            return Err(format!("\"analysis\" lacks numeric key {key:?}"));
        }
    }
    let rules = doc.get("rules").and_then(Value::as_array).ok_or("\"rules\" must be an array")?;
    if rules.len() != RULES.len() {
        return Err(format!("expected {} rule summaries, found {}", RULES.len(), rules.len()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_outcome_renders_a_valid_clean_report() {
        let doc = Outcome { files_scanned: 3, ..Outcome::default() }.render(".");
        validate_report(&doc).expect("valid report");
        let parsed = json::parse(&doc).expect("parses");
        assert_eq!(parsed.get("clean"), Some(&Value::Bool(true)));
    }

    #[test]
    fn violations_make_the_report_dirty_but_still_valid() {
        let outcome = Outcome {
            files_scanned: 1,
            violations: vec![Violation {
                rule: "R7",
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                snippet: "todo!()".to_string(),
                message: "stub".to_string(),
            }],
            ..Outcome::default()
        };
        let doc = outcome.render(".");
        validate_report(&doc).expect("valid report");
        assert_eq!(json::parse(&doc).expect("parses").get("clean"), Some(&Value::Bool(false)));
    }
}
