//! `planaria-lint` — workspace-wide static analysis for the simulator's
//! determinism, hot-path and API-hygiene invariants.
//!
//! The repository's value proposition — bit-identical simulation results
//! at any thread count and under any hasher — used to rest on runtime
//! tests alone. This crate machine-checks the invariants at the source
//! level, so a future PR cannot quietly reintroduce a seeded `HashMap`
//! in a hot path, a wall-clock read inside the simulated core, or a
//! registry dependency the offline build environment cannot fetch.
//!
//! The analyzer is deliberately dependency-free: a hand-rolled
//! comment/string-aware [`lexer`] (no `syn` — consistent with the
//! no-registry vendoring policy) feeds a brace-matched item-tree parser
//! ([`syntax`]), a workspace call-graph approximation ([`callgraph`])
//! and twelve [`rules`] — eight token-level, four flow-aware:
//!
//! | id  | invariant |
//! |-----|-----------|
//! | R1  | hot-path crates use `planaria_hash` maps, never default-hasher `HashMap`/`HashSet` |
//! | R2  | no `Instant::now`/`SystemTime`/`thread_rng`/`std::env` outside the timing allowlist |
//! | R3  | no `.unwrap()` outside test code |
//! | R4  | every crate root carries `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]` |
//! | R5  | no float accumulation driven by hash-map iteration order |
//! | R6  | JSON emitters route through `planaria_common::json` |
//! | R7  | no `todo!`/`dbg!`/`unimplemented!` |
//! | R8  | imports and manifests resolve only to workspace/vendored crates |
//! | R9  | no function may transitively *reach* a wall clock through calls (call-graph R2) |
//! | R10 | no hash-map iteration flowing into ordered sinks without a sort |
//! | R11 | parsing modules use checked conversions, never narrowing `as` casts |
//! | R12 | no unbounded channels, no `Rc`/`RefCell` in `Send` device state, no hot-crate locks |
//!
//! Violations can be grandfathered in a committed [`baseline`] file
//! (schema `planaria-lint-baseline-v2`), each entry carrying a required
//! justification; the shipped baseline is empty. Results are emitted as a
//! fixed-key-order `planaria-lint-v2` JSON [`report`] that also carries
//! the call-graph size, and `ci.sh` runs `planaria-lint --check` on every
//! gate. See `DESIGN.md` §9 (token rules) and §11 (structural analysis)
//! for the full rationale and workflow.
//!
//! # Examples
//!
//! ```
//! use planaria_lint::rules::{lint_source, Config, FileMeta};
//!
//! let meta = FileMeta::for_path("crates/core/src/demo.rs").expect("classifiable");
//! let bad = "pub fn f() { let x: Option<u32> = None; x.unwrap(); }";
//! let violations = lint_source(&meta, bad, &Config::default());
//! assert_eq!(violations.len(), 1);
//! assert_eq!(violations[0].rule, "R3");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod syntax;

use std::fs;
use std::path::{Path, PathBuf};

use baseline::Baseline;
use report::Outcome;
use rules::{lint_manifest, Config, FileMeta, Violation};

/// One classified source file queued for a [`lint_files`] run.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// File classification (path, crate, origin).
    pub meta: FileMeta,
    /// Full source text.
    pub text: String,
}

/// The result of linting a set of files together: per-file rule
/// violations plus the workspace call-graph pass, and the graph's size
/// (reported for analyzer-cost visibility).
#[derive(Debug, Clone, Default)]
pub struct LintRun {
    /// All violations, sorted by `(file, line, rule)`.
    pub violations: Vec<Violation>,
    /// Function nodes in the call graph.
    pub functions: usize,
    /// Resolved call edges.
    pub call_edges: usize,
}

/// Lints `files` as one unit: every token-level rule per file, then the
/// call-graph pass (rule R9) across all of them. This is the engine
/// behind [`run_workspace`]; tests can call it with in-memory files to
/// exercise cross-file taint without touching disk.
pub fn lint_files(files: &[SourceFile], config: &Config) -> LintRun {
    let mut violations = Vec::new();
    let mut irs = Vec::with_capacity(files.len());
    for f in files {
        violations.extend(rules::lint_source_tokens(&f.meta, &f.text, config));
        irs.push(callgraph::FileIr::build(f.meta.clone(), &f.text));
    }
    let graph = callgraph::CallGraph::build(&irs, config);
    violations.extend(graph.wall_clock_taint(&irs));
    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    LintRun { violations, functions: graph.nodes.len(), call_edges: graph.edges.len() }
}

/// Top-level directories the workspace scan covers.
const SCAN_ROOTS: [&str; 5] = ["crates", "vendor", "tests", "examples", "benches"];

/// Directory names that are never descended into.
///
/// `fixtures` holds the lint's own deliberately-bad test inputs — they
/// must not count as workspace sources.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// Builds the scan [`Config`] for a workspace: the default rule
/// parameters plus the crate identifiers found in member manifests
/// (consulted by rule R8's import check).
///
/// # Errors
///
/// Fails only on unreadable member directories.
pub fn workspace_config(root: &Path) -> Result<Config, String> {
    let mut config = Config::default();
    for dir in ["crates", "vendor"] {
        let base = root.join(dir);
        if !base.is_dir() {
            continue;
        }
        for member in sorted_entries(&base)? {
            let manifest = member.join("Cargo.toml");
            let Ok(text) = fs::read_to_string(&manifest) else { continue };
            if let Some(name) = package_name(&text) {
                config.crate_idents.push(name.replace('-', "_"));
            }
        }
    }
    Ok(config)
}

/// Extracts `name = "…"` from a manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                return Some(value.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Lints the whole workspace under `root` against `baseline`.
///
/// Scans every member crate's sources, the top-level `tests/` and
/// `examples/` trees and all `Cargo.toml` manifests; applies the
/// baseline; returns the aggregated, deterministically-ordered outcome.
///
/// # Errors
///
/// Fails on I/O errors (unreadable directories or files).
pub fn run_workspace(root: &Path, baseline: &Baseline) -> Result<Outcome, String> {
    let config = workspace_config(root)?;
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;

    // Root manifest (workspace dependency declarations).
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        let text = read(&root_manifest)?;
        violations.extend(lint_manifest("Cargo.toml", &text));
        files_scanned += 1;
    }

    // Phase 1: walk the tree, linting manifests inline and collecting
    // every Rust source — the call-graph pass needs all files at once.
    let mut sources: Vec<SourceFile> = Vec::new();
    for top in SCAN_ROOTS {
        let base = root.join(top);
        if !base.is_dir() {
            continue;
        }
        let mut stack = vec![base];
        while let Some(dir) = stack.pop() {
            for entry in sorted_entries(&dir)? {
                let name =
                    entry.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
                if entry.is_dir() {
                    if !SKIP_DIRS.contains(&name.as_str()) {
                        stack.push(entry);
                    }
                    continue;
                }
                let rel = relative_label(root, &entry);
                if name == "Cargo.toml" {
                    violations.extend(lint_manifest(&rel, &read(&entry)?));
                    files_scanned += 1;
                } else if name.ends_with(".rs") {
                    if let Some(meta) = FileMeta::for_path(&rel) {
                        sources.push(SourceFile { meta, text: read(&entry)? });
                        files_scanned += 1;
                    }
                }
            }
        }
    }

    // Phase 2: rules + call graph over the collected set.
    let run = lint_files(&sources, &config);
    violations.extend(run.violations);
    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    let mut used = vec![false; baseline.entries.len()];
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for v in violations {
        if baseline.matches(&v, &mut used) {
            suppressed.push(v);
        } else {
            kept.push(v);
        }
    }
    let stale_entries =
        baseline.entries.iter().zip(&used).filter(|(_, u)| !**u).map(|(e, _)| e.clone()).collect();

    Ok(Outcome {
        files_scanned,
        functions: run.functions,
        call_edges: run.call_edges,
        violations: kept,
        suppressed,
        stale_entries,
    })
}

/// Loads the baseline at `path`; a missing file is an empty baseline.
///
/// # Errors
///
/// Propagates parse/validation errors ([`Baseline::parse`]).
pub fn load_baseline(path: &Path) -> Result<Baseline, String> {
    match fs::read_to_string(path) {
        Ok(text) => Baseline::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

fn read(path: &Path) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// Deterministic directory listing (sorted by file name).
fn sorted_entries(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

/// Workspace-relative `/`-separated label for a path under `root`.
fn relative_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
