//! `planaria-lint` command-line interface.
//!
//! ```text
//! planaria-lint [--root DIR] [--baseline FILE] [--out FILE] [--check]
//! planaria-lint --validate FILE
//! planaria-lint --list-rules
//! planaria-lint --explain R9
//! ```
//!
//! Default mode lints the workspace at `--root` (default `.`) against the
//! baseline (default `<root>/lint-baseline.json`; a missing file counts
//! as empty), writes the `planaria-lint-v2` JSON report to `--out` (or
//! stdout) and prints a text summary to stderr. With `--check` the exit
//! status is nonzero when any unsuppressed violation or stale baseline
//! entry exists. `--validate FILE` checks a previously written report
//! for schema conformance. `--explain R<n>` prints one rule's rationale
//! with a firing and a non-firing example; an unknown rule id exits 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use planaria_lint::report::validate_report;
use planaria_lint::rules::RULES;
use planaria_lint::{load_baseline, run_workspace};

struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    out: Option<PathBuf>,
    check: bool,
    validate: Option<PathBuf>,
    list_rules: bool,
    explain: Option<String>,
}

const USAGE: &str = "usage: planaria-lint [--root DIR] [--baseline FILE] [--out FILE] \
                     [--check] | --validate FILE | --list-rules | --explain R<n>";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline: None,
        out: None,
        check: false,
        validate: None,
        list_rules: false,
        explain: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().map(PathBuf::from).ok_or(format!("{flag} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--root" => opts.root = value("--root")?,
            "--baseline" => opts.baseline = Some(value("--baseline")?),
            "--out" => opts.out = Some(value("--out")?),
            "--check" => opts.check = true,
            "--validate" => opts.validate = Some(value("--validate")?),
            "--list-rules" => opts.list_rules = true,
            "--explain" => {
                opts.explain = Some(value("--explain")?.to_string_lossy().into_owned());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Exit code for an unknown rule id passed to `--explain`.
const EXIT_USAGE: u8 = 2;

fn explain(id: &str) -> Result<(), String> {
    let Some(rule) = RULES.iter().find(|r| r.id.eq_ignore_ascii_case(id)) else {
        return Err(format!("unknown rule id {id:?} (known: R1–R{})\n{USAGE}", RULES.len()));
    };
    println!("{} — {}", rule.id, rule.name);
    println!("\n{}", rule.summary);
    println!("\nWhy:\n  {}", rule.rationale);
    println!("\nFires:");
    for line in rule.fires.lines() {
        println!("  {line}");
    }
    println!("\nClean:");
    for line in rule.clean.lines() {
        println!("  {line}");
    }
    Ok(())
}

fn real_main() -> Result<bool, String> {
    let opts = parse_args()?;

    if opts.list_rules {
        for rule in RULES {
            println!("{:<4} {:<26} {}", rule.id, rule.name, rule.summary);
        }
        return Ok(true);
    }

    if let Some(id) = &opts.explain {
        return match explain(id) {
            Ok(()) => Ok(true),
            Err(msg) => {
                eprintln!("planaria-lint: {msg}");
                std::process::exit(i32::from(EXIT_USAGE));
            }
        };
    }

    if let Some(path) = &opts.validate {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        validate_report(&text)?;
        println!("{}: valid {} report", path.display(), planaria_lint::report::REPORT_SCHEMA);
        return Ok(true);
    }

    let baseline_path =
        opts.baseline.clone().unwrap_or_else(|| opts.root.join("lint-baseline.json"));
    let baseline = load_baseline(&baseline_path)?;
    let outcome = run_workspace(&opts.root, &baseline)?;

    let report = outcome.render(&opts.root.display().to_string());
    match &opts.out {
        Some(path) => std::fs::write(path, &report)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        None => print!("{report}"),
    }
    eprint!("{}", outcome.render_text());

    Ok(!opts.check || outcome.is_clean())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("planaria-lint: {msg}");
            ExitCode::FAILURE
        }
    }
}
