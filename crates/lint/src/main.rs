//! `planaria-lint` command-line interface.
//!
//! ```text
//! planaria-lint [--root DIR] [--baseline FILE] [--out FILE] [--check]
//! planaria-lint --validate FILE
//! planaria-lint --list-rules
//! ```
//!
//! Default mode lints the workspace at `--root` (default `.`) against the
//! baseline (default `<root>/lint-baseline.json`; a missing file counts
//! as empty), writes the `planaria-lint-v1` JSON report to `--out` (or
//! stdout) and prints a text summary to stderr. With `--check` the exit
//! status is nonzero when any unsuppressed violation or stale baseline
//! entry exists. `--validate FILE` checks a previously written report
//! for schema conformance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use planaria_lint::report::validate_report;
use planaria_lint::rules::RULES;
use planaria_lint::{load_baseline, run_workspace};

struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    out: Option<PathBuf>,
    check: bool,
    validate: Option<PathBuf>,
    list_rules: bool,
}

const USAGE: &str = "usage: planaria-lint [--root DIR] [--baseline FILE] [--out FILE] \
                     [--check] | --validate FILE | --list-rules";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline: None,
        out: None,
        check: false,
        validate: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().map(PathBuf::from).ok_or(format!("{flag} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--root" => opts.root = value("--root")?,
            "--baseline" => opts.baseline = Some(value("--baseline")?),
            "--out" => opts.out = Some(value("--out")?),
            "--check" => opts.check = true,
            "--validate" => opts.validate = Some(value("--validate")?),
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn real_main() -> Result<bool, String> {
    let opts = parse_args()?;

    if opts.list_rules {
        for rule in RULES {
            println!("{}  {:<22} {}", rule.id, rule.name, rule.summary);
        }
        return Ok(true);
    }

    if let Some(path) = &opts.validate {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        validate_report(&text)?;
        println!("{}: valid planaria-lint-v1 report", path.display());
        return Ok(true);
    }

    let baseline_path =
        opts.baseline.clone().unwrap_or_else(|| opts.root.join("lint-baseline.json"));
    let baseline = load_baseline(&baseline_path)?;
    let outcome = run_workspace(&opts.root, &baseline)?;

    let report = outcome.render(&opts.root.display().to_string());
    match &opts.out {
        Some(path) => std::fs::write(path, &report)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        None => print!("{report}"),
    }
    eprint!("{}", outcome.render_text());

    Ok(!opts.check || outcome.is_clean())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("planaria-lint: {msg}");
            ExitCode::FAILURE
        }
    }
}
