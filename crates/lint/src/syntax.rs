//! Brace-matched item-tree parser over the [`crate::lexer`] token stream.
//!
//! The token-level rules (R1–R8) only need to know *which* tokens exist;
//! the flow-aware rules (R9–R12) need to know *where* they live: which
//! `fn` a call sits in, whether that `fn` is inside a `#[cfg(test)]`
//! region, which `impl` block owns a method. This module recovers exactly
//! that structure — modules, functions, impls, traits and `use`
//! declarations, each with its brace-matched token span — without a full
//! Rust grammar.
//!
//! The parser is deliberately forgiving: anything it does not recognise
//! as an item is skipped one token at a time, so expression code inside
//! function bodies never derails it, and a malformed file degrades to a
//! smaller tree instead of an error (the compiler, not the linter, owns
//! syntax errors). Known approximations are documented in `DESIGN.md`
//! §11; the important ones:
//!
//! * generic argument lists are not bracket-matched (`<`/`>` are also
//!   comparison operators), so a `{` inside a const-generic argument
//!   would end an item header early;
//! * `cfg_attr(test, …)` is treated like `cfg(test)` whenever both the
//!   `cfg`-ish and `test` identifiers appear in one attribute.

use crate::lexer::{lex, Token, TokenKind};

/// What kind of item a tree node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;`.
    Mod,
    /// `fn name(…) { … }` (or a body-less trait-method signature).
    Fn,
    /// `impl Type { … }` / `impl Trait for Type { … }`; `name` holds the
    /// self-type's head identifier.
    Impl,
    /// `trait Name { … }`.
    Trait,
    /// `use path::…;`; `name` holds the first path segment.
    Use,
}

/// One node of the item tree.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item class.
    pub kind: ItemKind,
    /// Name (see [`ItemKind`] for what each class stores). Raw-identifier
    /// items (`fn r#loop`) store the bare name (`loop`) — the lexer
    /// strips the `r#` prefix.
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// True when this item, or any enclosing item, is gated behind
    /// `#[cfg(test)]` (or is a `#[test]` function).
    pub cfg_test: bool,
    /// Token range of the brace-matched body interior (exclusive of the
    /// braces themselves). `None` for `mod name;`, `use …;` and body-less
    /// fn signatures.
    pub body: Option<(usize, usize)>,
    /// Items nested inside the body: a module's items, an impl's
    /// methods, and items declared inside a function body (nested fns,
    /// impl-in-fn blocks).
    pub children: Vec<Item>,
}

/// A parsed file: the top-level items with their nested children.
#[derive(Debug, Clone, Default)]
pub struct ItemTree {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A flattened view of one function, carrying its resolution context.
#[derive(Debug, Clone)]
pub struct FnView<'a> {
    /// The underlying tree node (`kind == ItemKind::Fn`).
    pub item: &'a Item,
    /// Enclosing module names, outermost first (inline `mod`s only — the
    /// file-to-module mapping is the caller's concern).
    pub modules: Vec<&'a str>,
    /// Self-type head of the enclosing `impl`/`trait`, if any.
    pub impl_type: Option<&'a str>,
}

impl ItemTree {
    /// Parses `tokens` into an item tree. Never fails; unrecognised
    /// regions simply contribute no items.
    pub fn parse(tokens: &[Token]) -> ItemTree {
        let mut p = Parser { toks: tokens };
        ItemTree { items: p.parse_items(0, tokens.len(), false) }
    }

    /// Convenience: lex `source` and parse the result.
    pub fn parse_source(source: &str) -> ItemTree {
        ItemTree::parse(&lex(source))
    }

    /// Flattens the tree into all function nodes, each with its module
    /// path and owning impl type, in source order.
    pub fn fns(&self) -> Vec<FnView<'_>> {
        let mut out = Vec::new();
        let mut modules = Vec::new();
        for item in &self.items {
            collect_fns(item, &mut modules, None, &mut out);
        }
        out
    }
}

fn collect_fns<'a>(
    item: &'a Item,
    modules: &mut Vec<&'a str>,
    impl_type: Option<&'a str>,
    out: &mut Vec<FnView<'a>>,
) {
    match item.kind {
        ItemKind::Fn => {
            out.push(FnView { item, modules: modules.clone(), impl_type });
            // Nested items inside the fn body (impl-in-fn, fn-in-fn).
            for child in &item.children {
                collect_fns(child, modules, None, out);
            }
        }
        ItemKind::Mod => {
            modules.push(&item.name);
            for child in &item.children {
                collect_fns(child, modules, None, out);
            }
            modules.pop();
        }
        ItemKind::Impl | ItemKind::Trait => {
            for child in &item.children {
                collect_fns(child, modules, Some(&item.name), out);
            }
        }
        ItemKind::Use => {}
    }
}

struct Parser<'a> {
    toks: &'a [Token],
}

/// Keywords that may prefix a `fn` item (`pub const unsafe extern fn` —
/// the workspace forbids `unsafe`, but the parser stays general).
const FN_PREFIXES: [&str; 4] = ["const", "async", "unsafe", "extern"];

impl Parser<'_> {
    fn ident_at(&self, i: usize) -> Option<&str> {
        self.toks.get(i).filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.as_str())
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    /// Parses the items of the token region `[lo, hi)`; `inherited_test`
    /// marks the whole region as test-gated.
    fn parse_items(&mut self, lo: usize, hi: usize, inherited_test: bool) -> Vec<Item> {
        let mut items = Vec::new();
        let mut i = lo;
        while i < hi {
            // Outer attributes: `#[…]` (inner `#![…]` attributes are
            // skipped — they describe the enclosing scope, not an item).
            let mut cfg_test = inherited_test;
            let mut saw_attr = false;
            while self.punct_at(i, '#') && i + 1 < hi {
                let inner = self.punct_at(i + 1, '!');
                let open = if inner { i + 2 } else { i + 1 };
                if !self.punct_at(open, '[') {
                    break;
                }
                let (gates_test, next) = self.scan_attribute(open, hi);
                if !inner {
                    cfg_test |= gates_test;
                    saw_attr = true;
                }
                i = next;
            }
            // Visibility: `pub` / `pub(crate)` / `pub(in path)`.
            if self.ident_at(i) == Some("pub") {
                i += 1;
                if self.punct_at(i, '(') {
                    i = self.skip_balanced(i, hi, '(', ')');
                }
            }
            match self.ident_at(i) {
                Some("mod") if self.toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident) => {
                    let (item, next) = self.parse_mod(i, hi, cfg_test);
                    items.push(item);
                    i = next;
                }
                Some("fn") if self.toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident) => {
                    let (item, next) = self.parse_fn(i, hi, cfg_test);
                    items.push(item);
                    i = next;
                }
                Some(kw @ ("impl" | "trait")) => {
                    let (item, next) = self.parse_impl_or_trait(i, hi, kw == "trait", cfg_test);
                    if let Some(item) = item {
                        items.push(item);
                    }
                    i = next;
                }
                Some("use") => {
                    let (item, next) = self.parse_use(i, hi, cfg_test);
                    if let Some(item) = item {
                        items.push(item);
                    }
                    i = next;
                }
                Some(kw) if FN_PREFIXES.contains(&kw) => {
                    // `const fn f…` / `const NAME: …` — peek past the
                    // prefix chain; only a following `fn` makes it a fn.
                    let mut j = i + 1;
                    while self.ident_at(j).is_some_and(|k| FN_PREFIXES.contains(&k))
                        || self.toks.get(j).is_some_and(|t| t.kind == TokenKind::StrLit)
                    {
                        j += 1;
                    }
                    if self.ident_at(j) == Some("fn") {
                        i = j; // re-dispatch on the `fn` next iteration
                    } else {
                        i = self.skip_statement_like(i, hi);
                    }
                }
                Some("struct" | "enum" | "union" | "static" | "type" | "macro_rules") => {
                    i = self.skip_statement_like(i, hi);
                }
                _ => {
                    // Expression token (inside a fn body) or stray input:
                    // balanced skipping keeps nested braces from being
                    // misread as item boundaries, everything else is
                    // stepped over. Attributes on non-items fall out here.
                    let _ = saw_attr;
                    if self.punct_at(i, '{') {
                        i = self.skip_balanced(i, hi, '{', '}');
                    } else {
                        i += 1;
                    }
                }
            }
        }
        items
    }

    /// Scans one attribute starting at its `[`. Returns whether it gates
    /// test code and the index just past the closing `]`.
    fn scan_attribute(&self, open: usize, hi: usize) -> (bool, usize) {
        let mut depth = 0usize;
        let mut saw_cfg = false;
        let mut saw_not = false;
        let mut saw_test = false;
        let mut bare_test = false;
        let mut j = open;
        while j < hi {
            let t = &self.toks[j];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            } else if t.is_ident("cfg") || t.is_ident("cfg_attr") {
                saw_cfg = true;
            } else if t.is_ident("not") {
                saw_not = true;
            } else if t.is_ident("test") {
                saw_test = true;
                if j == open + 1 {
                    bare_test = true;
                }
            }
            j += 1;
        }
        ((saw_cfg && saw_test && !saw_not) || bare_test, j)
    }

    /// `i` points at `mod`.
    fn parse_mod(&mut self, i: usize, hi: usize, cfg_test: bool) -> (Item, usize) {
        let name = self.toks[i + 1].text.clone();
        let line = self.toks[i].line;
        let mut j = i + 2;
        if self.punct_at(j, ';') {
            let item = Item {
                kind: ItemKind::Mod,
                name,
                line,
                cfg_test,
                body: None,
                children: Vec::new(),
            };
            return (item, j + 1);
        }
        // Skip anything up to the opening brace (`mod x {` has nothing,
        // but stay robust).
        while j < hi && !self.punct_at(j, '{') {
            j += 1;
        }
        let end = self.skip_balanced(j, hi, '{', '}');
        let body = (j + 1, end.saturating_sub(1));
        let children = self.parse_items(body.0, body.1, cfg_test);
        (Item { kind: ItemKind::Mod, name, line, cfg_test, body: Some(body), children }, end)
    }

    /// `i` points at `fn`; the next token is the name.
    fn parse_fn(&mut self, i: usize, hi: usize, cfg_test: bool) -> (Item, usize) {
        let name = self.toks[i + 1].text.clone();
        let line = self.toks[i].line;
        // Find the body `{` or terminating `;` at bracket depth 0. Only
        // `(`/`[` nesting is tracked: generics can contain neither in
        // signature position (const-generic braces are the documented
        // exception).
        let mut depth = 0usize;
        let mut j = i + 2;
        while j < hi {
            let t = &self.toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(';') {
                let item = Item {
                    kind: ItemKind::Fn,
                    name,
                    line,
                    cfg_test,
                    body: None,
                    children: Vec::new(),
                };
                return (item, j + 1);
            } else if depth == 0 && t.is_punct('{') {
                let end = self.skip_balanced(j, hi, '{', '}');
                let body = (j + 1, end.saturating_sub(1));
                let children = self.parse_items(body.0, body.1, cfg_test);
                let item =
                    Item { kind: ItemKind::Fn, name, line, cfg_test, body: Some(body), children };
                return (item, end);
            }
            j += 1;
        }
        (Item { kind: ItemKind::Fn, name, line, cfg_test, body: None, children: Vec::new() }, hi)
    }

    /// `i` points at `impl` or `trait`.
    fn parse_impl_or_trait(
        &mut self,
        i: usize,
        hi: usize,
        is_trait: bool,
        cfg_test: bool,
    ) -> (Option<Item>, usize) {
        let line = self.toks[i].line;
        // Header runs to the `{` at paren depth 0 (or `;` for bodyless
        // forms like `impl Foo;` which do not occur but keep us safe).
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut header_idents: Vec<(usize, String)> = Vec::new();
        while j < hi {
            let t = &self.toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct('{') {
                break;
            } else if depth == 0 && t.is_punct(';') {
                return (None, j + 1);
            } else if t.kind == TokenKind::Ident {
                header_idents.push((j, t.text.clone()));
            }
            j += 1;
        }
        if j >= hi {
            return (None, hi);
        }
        let name = if is_trait {
            header_idents.first().map(|(_, n)| n.clone()).unwrap_or_default()
        } else {
            impl_self_type(&header_idents)
        };
        let end = self.skip_balanced(j, hi, '{', '}');
        let body = (j + 1, end.saturating_sub(1));
        let children = self.parse_items(body.0, body.1, cfg_test);
        let kind = if is_trait { ItemKind::Trait } else { ItemKind::Impl };
        (Some(Item { kind, name, line, cfg_test, body: Some(body), children }), end)
    }

    /// `i` points at `use`.
    fn parse_use(&mut self, i: usize, hi: usize, cfg_test: bool) -> (Option<Item>, usize) {
        let line = self.toks[i].line;
        let mut j = i + 1;
        let mut first = None;
        let mut depth = 0usize;
        while j < hi {
            let t = &self.toks[j];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(';') {
                j += 1;
                break;
            } else if t.kind == TokenKind::Ident && first.is_none() {
                first = Some(t.text.clone());
            }
            j += 1;
        }
        let name = first.unwrap_or_default();
        (
            Some(Item {
                kind: ItemKind::Use,
                name,
                line,
                cfg_test,
                body: None,
                children: Vec::new(),
            }),
            j,
        )
    }

    /// Skips a struct/enum/const/static/type/macro_rules item: to the
    /// first `;` at depth 0, or past a balanced `{…}` body.
    fn skip_statement_like(&mut self, i: usize, hi: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < hi {
            let t = &self.toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct('{') {
                return self.skip_balanced(j, hi, '{', '}');
            } else if depth == 0 && t.is_punct(';') {
                return j + 1;
            }
            j += 1;
        }
        hi
    }

    /// `i` points at the opening delimiter; returns the index just past
    /// its match (or `hi` when unbalanced).
    fn skip_balanced(&self, i: usize, hi: usize, open: char, close: char) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < hi {
            let t = &self.toks[j];
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        hi
    }
}

/// Extracts the self-type head from an impl header's identifier list:
/// the first identifier after `for` when present (`impl Trait for Type`),
/// otherwise the first identifier that is not a generic-param keyword.
fn impl_self_type(header_idents: &[(usize, String)]) -> String {
    const SKIP: [&str; 4] = ["dyn", "mut", "const", "where"];
    if let Some(pos) = header_idents.iter().position(|(_, n)| n == "for") {
        for (_, n) in &header_idents[pos + 1..] {
            if !SKIP.contains(&n.as_str()) {
                return n.clone();
            }
        }
    }
    for (_, n) in header_idents {
        if !SKIP.contains(&n.as_str()) && n != "for" {
            return n.clone();
        }
    }
    String::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(items: &[Item]) -> Vec<(&str, ItemKind)> {
        items.iter().map(|i| (i.name.as_str(), i.kind)).collect()
    }

    #[test]
    fn flat_items_parse_with_bodies() {
        let tree = ItemTree::parse_source(
            "use std::collections::HashMap;\n\
             pub fn alpha(x: u32) -> u32 { x + 1 }\n\
             mod inner { pub fn beta() {} }\n\
             impl Gamma { fn delta(&self) {} }\n",
        );
        assert_eq!(
            names(&tree.items),
            [
                ("std", ItemKind::Use),
                ("alpha", ItemKind::Fn),
                ("inner", ItemKind::Mod),
                ("Gamma", ItemKind::Impl),
            ]
        );
        assert!(tree.items[1].body.is_some());
        assert_eq!(names(&tree.items[2].children), [("beta", ItemKind::Fn)]);
        assert_eq!(names(&tree.items[3].children), [("delta", ItemKind::Fn)]);
    }

    #[test]
    fn cfg_test_gating_is_inherited_through_nesting() {
        let tree = ItemTree::parse_source(
            "pub fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 mod nested { pub fn helper() {} }\n\
                 #[test]\n\
                 fn t() {}\n\
             }\n",
        );
        let fns = tree.fns();
        let flags: Vec<(&str, bool)> =
            fns.iter().map(|f| (f.item.name.as_str(), f.item.cfg_test)).collect();
        assert_eq!(flags, [("prod", false), ("helper", true), ("t", true)]);
    }

    #[test]
    fn cfg_not_test_is_production() {
        let tree = ItemTree::parse_source(
            "#[cfg(not(test))]\npub fn prod() { }\n#[cfg(test)]\nfn t() {}\n",
        );
        let fns = tree.fns();
        assert!(!fns[0].item.cfg_test, "cfg(not(test)) gates production code");
        assert!(fns[1].item.cfg_test);
    }

    #[test]
    fn impl_in_fn_is_recovered_as_nested_items() {
        let tree = ItemTree::parse_source(
            "pub fn outer() -> u32 {\n\
                 struct Local(u32);\n\
                 impl Local { fn get(&self) -> u32 { self.0 } }\n\
                 fn helper() -> u32 { 7 }\n\
                 Local(helper()).get()\n\
             }\n",
        );
        let fns = tree.fns();
        let got: Vec<&str> = fns.iter().map(|f| f.item.name.as_str()).collect();
        assert_eq!(got, ["outer", "get", "helper"]);
        assert_eq!(fns[1].impl_type, Some("Local"));
    }

    #[test]
    fn raw_ident_fn_names_are_recorded_bare() {
        let tree =
            ItemTree::parse_source("pub fn r#loop() {}\npub fn r#match(x: u32) -> u32 { x }\n");
        let got: Vec<&str> = tree.fns().iter().map(|f| f.item.name.as_str()).collect();
        assert_eq!(got, ["loop", "match"]);
    }

    #[test]
    fn trait_for_impl_records_the_self_type() {
        let tree = ItemTree::parse_source(
            "impl core::fmt::Display for Report { fn fmt(&self) {} }\n\
             impl<T: Clone> Wrapper<T> { fn unwrap_inner(self) -> T { self.0 } }\n",
        );
        assert_eq!(tree.items[0].name, "Report");
        // `T` is the generic parameter; the heuristic takes the first
        // header identifier, which for `impl<T: Clone> Wrapper<T>` is `T`
        // — acceptable for resolution (methods still match by name), but
        // pin the current behavior so changes are deliberate.
        let fns = tree.fns();
        assert_eq!(fns[1].item.name, "unwrap_inner");
    }

    #[test]
    fn fn_signatures_without_bodies_have_no_body() {
        let tree = ItemTree::parse_source(
            "trait T { fn sig(&self); fn with_default(&self) -> u32 { 1 } }",
        );
        let fns = tree.fns();
        assert_eq!(fns[0].item.name, "sig");
        assert!(fns[0].item.body.is_none());
        assert!(fns[1].item.body.is_some());
    }
}
