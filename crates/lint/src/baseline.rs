//! The grandfathering baseline: explicitly accepted violations.
//!
//! A committed `lint-baseline.json` lists sites that are allowed to break
//! a rule, each with a **required, non-empty justification** — the lint
//! ships with an empty baseline, so every future entry is a reviewed,
//! deliberate exception rather than silent drift. Entries match by
//! `(rule, file, pattern)` where `pattern` is a substring of the
//! offending source line; entries that stop matching anything are
//! reported as *stale* and fail `--check`, keeping the file minimal.

use planaria_common::json::{self, Value};

use crate::rules::{Violation, RULES};

/// Schema identifier of the baseline document.
///
/// v2 accompanies the `planaria-lint-v2` report: entries may now name
/// the flow-aware rules R9–R12, and unknown rule ids are rejected at
/// parse time (a typo'd id would otherwise be a permanently-stale entry).
pub const BASELINE_SCHEMA: &str = "planaria-lint-baseline-v2";

/// One grandfathered site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id the site is excused from (`R1`…`R12`).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Substring of the offending source line.
    pub pattern: String,
    /// Why the exception is sound (must be non-empty).
    pub justification: String,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses a baseline document.
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON, a wrong/missing schema id, non-string
    /// fields, unknown rule ids and — deliberately — empty
    /// justifications.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text).map_err(|e| format!("baseline: {e}"))?;
        match doc.get("schema").and_then(Value::as_str) {
            Some(BASELINE_SCHEMA) => {}
            other => {
                return Err(format!(
                    "baseline: schema must be {BASELINE_SCHEMA:?}, found {other:?}"
                ))
            }
        }
        let raw_entries = doc
            .get("entries")
            .and_then(Value::as_array)
            .ok_or("baseline: missing \"entries\" array")?;
        let mut entries = Vec::new();
        for (i, e) in raw_entries.iter().enumerate() {
            let field = |name: &str| {
                e.get(name)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or(format!("baseline: entry {i} lacks string field {name:?}"))
            };
            let entry = BaselineEntry {
                rule: field("rule")?,
                file: field("file")?,
                pattern: field("pattern")?,
                justification: field("justification")?,
            };
            if !RULES.iter().any(|r| r.id == entry.rule) {
                return Err(format!(
                    "baseline: entry {i} names unknown rule {:?} (known: R1–R{})",
                    entry.rule,
                    RULES.len()
                ));
            }
            if entry.justification.trim().is_empty() {
                return Err(format!(
                    "baseline: entry {i} ({} in {}) has an empty justification — every \
                     grandfathered site must say why the exception is sound",
                    entry.rule, entry.file
                ));
            }
            entries.push(entry);
        }
        Ok(Baseline { entries })
    }

    /// True if `v` is covered by some entry; marks that entry as used.
    pub fn matches(&self, v: &Violation, used: &mut [bool]) -> bool {
        for (i, e) in self.entries.iter().enumerate() {
            if e.rule == v.rule && e.file == v.file && v.snippet.contains(&e.pattern) {
                used[i] = true;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_baseline_parses() {
        let b = Baseline::parse(
            "{\n  \"schema\": \"planaria-lint-baseline-v2\",\n  \"entries\": []\n}\n",
        )
        .expect("valid baseline");
        assert!(b.entries.is_empty());
    }

    #[test]
    fn empty_justification_is_rejected() {
        let text = r#"{"schema": "planaria-lint-baseline-v2", "entries": [
            {"rule": "R2", "file": "crates/x.rs", "pattern": "Instant", "justification": " "}
        ]}"#;
        let err = Baseline::parse(text).expect_err("must reject");
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        // The v1 schema id is deliberately not accepted: the v2 rule set
        // changes what entries can mean, so old files must be re-reviewed.
        assert!(Baseline::parse("{\"schema\": \"nope\", \"entries\": []}").is_err());
        assert!(Baseline::parse("{\"schema\": \"planaria-lint-baseline-v1\", \"entries\": []}")
            .is_err());
    }

    #[test]
    fn unknown_rule_ids_are_rejected() {
        for bad in ["R0", "R13", "R99", "X2"] {
            let text = format!(
                r#"{{"schema": "planaria-lint-baseline-v2", "entries": [
                    {{"rule": "{bad}", "file": "f.rs", "pattern": "x", "justification": "y"}}
                ]}}"#
            );
            let err = Baseline::parse(&text).expect_err("must reject");
            assert!(err.contains("unknown rule"), "{err}");
        }
        let ok = r#"{"schema": "planaria-lint-baseline-v2", "entries": [
            {"rule": "R12", "file": "f.rs", "pattern": "Mutex", "justification": "reviewed"}
        ]}"#;
        assert_eq!(Baseline::parse(ok).expect("R12 is known").entries.len(), 1);
    }
}
